#include "dp/budget_wal.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "dp/budget.h"

namespace viewrewrite {
namespace {

std::string TempPath(const std::string& tag) {
  return "/tmp/vr_budget_wal_" + tag + "_" +
         std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
         ".wal";
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
}

/// Byte-boundary history of a WAL as it grows: after each append, the
/// file size and the net spent epsilon at that prefix.
struct Boundary {
  size_t bytes;
  double spent;
};

class BudgetWalTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FaultInjection::Instance().DisableAll();
    for (const std::string& p : cleanup_) std::remove(p.c_str());
  }
  std::string Track(std::string path) {
    cleanup_.push_back(path);
    cleanup_.push_back(path + ".tmp.1");  // belt and braces
    return path;
  }
  std::vector<std::string> cleanup_;
};

TEST_F(BudgetWalTest, FreshOpenCreatesReplayableLedger) {
  const std::string path = Track(TempPath("fresh"));
  std::remove(path.c_str());
  auto wal = BudgetWal::Open(path, 4.0);
  ASSERT_TRUE(wal.ok()) << wal.status().ToString();
  EXPECT_TRUE((*wal)->recovered().has_total);
  EXPECT_DOUBLE_EQ((*wal)->recovered().total, 4.0);
  EXPECT_DOUBLE_EQ((*wal)->SpentEpsilon(), 0.0);

  auto replayed = BudgetWal::Replay(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(replayed->has_total);
  EXPECT_DOUBLE_EQ(replayed->total, 4.0);
  EXPECT_DOUBLE_EQ(replayed->spent, 0.0);
  EXPECT_FALSE(replayed->torn_tail);
}

TEST_F(BudgetWalTest, SpendsAndRefundsReplayExactly) {
  const std::string path = Track(TempPath("roundtrip"));
  std::remove(path.c_str());
  {
    auto wal = BudgetWal::Open(path, 4.0);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendSpend(1.0, "synopsis:v1").ok());
    ASSERT_TRUE((*wal)->AppendSpend(0.5, "synopsis:v2").ok());
    ASSERT_TRUE((*wal)->AppendRefund(0.5, "refund:synopsis:v2").ok());
    ASSERT_TRUE((*wal)->AppendSpend(0.25, "gen1:synopsis:v1").ok());
  }
  auto replayed = BudgetWal::Replay(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_NEAR(replayed->spent, 1.25, 1e-12);
  ASSERT_EQ(replayed->entries.size(), 4u);
  EXPECT_EQ(replayed->entries[0].label, "synopsis:v1");
  EXPECT_TRUE(replayed->entries[2].refund);
  EXPECT_DOUBLE_EQ(replayed->entries[2].epsilon, -0.5);
  EXPECT_EQ(replayed->entries[3].label, "gen1:synopsis:v1");
}

TEST_F(BudgetWalTest, ReopenRecoversAndStacksSpends) {
  const std::string path = Track(TempPath("reopen"));
  std::remove(path.c_str());
  {
    auto wal = BudgetWal::Open(path, 4.0);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendSpend(1.5, "life1").ok());
  }
  {
    auto wal = BudgetWal::Open(path, 4.0);
    ASSERT_TRUE(wal.ok());
    EXPECT_NEAR((*wal)->recovered().spent, 1.5, 1e-12);
    ASSERT_TRUE((*wal)->AppendSpend(1.0, "life2").ok());
    EXPECT_NEAR((*wal)->SpentEpsilon(), 2.5, 1e-12);
  }
  auto replayed = BudgetWal::Replay(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_NEAR(replayed->spent, 2.5, 1e-12);
  EXPECT_EQ(replayed->entries.size(), 2u);
}

TEST_F(BudgetWalTest, TotalMismatchRefused) {
  const std::string path = Track(TempPath("mismatch"));
  std::remove(path.c_str());
  { ASSERT_TRUE(BudgetWal::Open(path, 4.0).ok()); }
  auto wal = BudgetWal::Open(path, 5.0);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BudgetWalTest, BadTotalsRefused) {
  const std::string path = Track(TempPath("badtotal"));
  EXPECT_FALSE(BudgetWal::Open(path, -1.0).ok());
  EXPECT_FALSE(BudgetWal::Open(path, std::nan("")).ok());
  EXPECT_FALSE(
      BudgetWal::Open(path, std::numeric_limits<double>::infinity()).ok());
}

// The core torn-tail property: truncate a valid log at EVERY byte offset.
// Replay must always succeed and report exactly the spent total of the
// last complete record boundary at or before the cut — a prefix of the
// truth, never garbage, never an error.
TEST_F(BudgetWalTest, TruncationAtEveryByteReplaysToLastBoundary) {
  const std::string path = Track(TempPath("torn"));
  std::remove(path.c_str());
  std::vector<Boundary> boundaries;
  {
    auto wal = BudgetWal::Open(path, 100.0);
    ASSERT_TRUE(wal.ok());
    boundaries.push_back({static_cast<size_t>((*wal)->SizeBytes()), 0.0});
    double spent = 0;
    const struct {
      double eps;
      bool refund;
    } ops[] = {{1.0, false}, {0.25, false}, {0.25, true},
               {2.0, false}, {0.125, false}};
    for (const auto& op : ops) {
      if (op.refund) {
        ASSERT_TRUE((*wal)->AppendRefund(op.eps, "refund:x").ok());
        spent -= op.eps;
      } else {
        ASSERT_TRUE((*wal)->AppendSpend(op.eps, "spend:with-a-label").ok());
        spent += op.eps;
      }
      boundaries.push_back({static_cast<size_t>((*wal)->SizeBytes()), spent});
    }
  }
  const std::string full = ReadAll(path);
  ASSERT_EQ(full.size(), boundaries.back().bytes);

  const std::string cut_path = Track(TempPath("torn_cut"));
  for (size_t len = 0; len <= full.size(); ++len) {
    WriteAll(cut_path, full.substr(0, len));
    auto replayed = BudgetWal::Replay(cut_path);
    ASSERT_TRUE(replayed.ok())
        << "cut at byte " << len << ": " << replayed.status().ToString();
    // The expected spent: the last boundary at or before the cut.
    double want = 0;
    size_t want_bytes = 0;
    for (const Boundary& b : boundaries) {
      if (b.bytes <= len) {
        want = b.spent;
        want_bytes = b.bytes;
      }
    }
    if (len < boundaries.front().bytes) {
      // Inside the header/total record: a torn creation, empty ledger.
      // An exact header (8 bytes) is the one complete-but-empty prefix.
      EXPECT_FALSE(replayed->has_total) << "cut at byte " << len;
      EXPECT_EQ(replayed->torn_tail, len != 8) << "cut at byte " << len;
      continue;
    }
    EXPECT_TRUE(replayed->has_total) << "cut at byte " << len;
    EXPECT_NEAR(replayed->spent, want, 1e-12) << "cut at byte " << len;
    EXPECT_EQ(replayed->valid_bytes, want_bytes) << "cut at byte " << len;
    EXPECT_EQ(replayed->torn_tail, len != want_bytes)
        << "cut at byte " << len;
  }
}

// Opening a torn log truncates the tail and appends cleanly after it.
TEST_F(BudgetWalTest, OpenAfterTornTailTruncatesAndAppends) {
  const std::string path = Track(TempPath("torn_open"));
  std::remove(path.c_str());
  size_t one_spend_bytes = 0;
  {
    auto wal = BudgetWal::Open(path, 10.0);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendSpend(1.0, "keep").ok());
    one_spend_bytes = static_cast<size_t>((*wal)->SizeBytes());
    ASSERT_TRUE((*wal)->AppendSpend(2.0, "tear-me").ok());
  }
  const std::string full = ReadAll(path);
  // Tear the final record in half.
  WriteAll(path, full.substr(0, one_spend_bytes +
                                    (full.size() - one_spend_bytes) / 2));
  {
    auto wal = BudgetWal::Open(path, 10.0);
    ASSERT_TRUE(wal.ok()) << wal.status().ToString();
    EXPECT_TRUE((*wal)->recovered().torn_tail);
    EXPECT_NEAR((*wal)->recovered().spent, 1.0, 1e-12);
    ASSERT_TRUE((*wal)->AppendSpend(0.5, "after-recovery").ok());
  }
  auto replayed = BudgetWal::Replay(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_FALSE(replayed->torn_tail);
  EXPECT_NEAR(replayed->spent, 1.5, 1e-12);
}

// Mid-log damage (a flipped byte with valid records after it) is
// kCorruption — never a silently wrong spent total.
TEST_F(BudgetWalTest, MidLogCorruptionIsTypedNeverWrongEpsilon) {
  const std::string path = Track(TempPath("midlog"));
  std::remove(path.c_str());
  size_t first_record_end = 0;
  {
    auto wal = BudgetWal::Open(path, 10.0);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendSpend(1.0, "aaaa").ok());
    first_record_end = static_cast<size_t>((*wal)->SizeBytes());
    ASSERT_TRUE((*wal)->AppendSpend(2.0, "bbbb").ok());
  }
  std::string blob = ReadAll(path);
  // Flip a payload byte of the FIRST spend record (not the last frame).
  blob[first_record_end - 6] ^= 0x5a;
  WriteAll(path, blob);
  auto replayed = BudgetWal::Replay(path);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kCorruption);
  // And Open refuses it the same way rather than recreating the file.
  auto wal = BudgetWal::Open(path, 10.0);
  ASSERT_FALSE(wal.ok());
  EXPECT_EQ(wal.status().code(), StatusCode::kCorruption);
}

TEST_F(BudgetWalTest, FlippedFinalFrameIsATornTailNotCorruption) {
  const std::string path = Track(TempPath("finalflip"));
  std::remove(path.c_str());
  {
    auto wal = BudgetWal::Open(path, 10.0);
    ASSERT_TRUE(wal.ok());
    ASSERT_TRUE((*wal)->AppendSpend(1.0, "keep").ok());
    ASSERT_TRUE((*wal)->AppendSpend(2.0, "flip").ok());
  }
  std::string blob = ReadAll(path);
  blob.back() ^= 0x5a;  // corrupt the final CRC byte
  WriteAll(path, blob);
  auto replayed = BudgetWal::Replay(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_TRUE(replayed->torn_tail);
  EXPECT_NEAR(replayed->spent, 1.0, 1e-12);
}

TEST_F(BudgetWalTest, NonWalFileRefused) {
  const std::string path = Track(TempPath("notwal"));
  WriteAll(path, "definitely not a WAL file at all");
  auto replayed = BudgetWal::Replay(path);
  ASSERT_FALSE(replayed.ok());
  EXPECT_EQ(replayed.status().code(), StatusCode::kCorruption);
}

TEST_F(BudgetWalTest, CheckpointFoldsHistoryAndCompactionShrinksFile) {
  const std::string path = Track(TempPath("compact"));
  std::remove(path.c_str());
  BudgetWal::Options options;
  options.compact_threshold_bytes = 256;  // tiny: force compaction
  auto wal = BudgetWal::Open(path, 50.0, options);
  ASSERT_TRUE(wal.ok());
  double spent = 0;
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        (*wal)->AppendSpend(0.5, "gen:spend-with-a-longish-label").ok());
    spent += 0.5;
  }
  const uint64_t before = (*wal)->SizeBytes();
  ASSERT_GT(before, options.compact_threshold_bytes);
  ASSERT_TRUE((*wal)->AppendCheckpoint(7).ok());
  const uint64_t after = (*wal)->SizeBytes();
  EXPECT_LT(after, before);

  auto replayed = BudgetWal::Replay(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_NEAR(replayed->spent, spent, 1e-9);
  EXPECT_EQ(replayed->last_checkpoint_generation, 7u);
  EXPECT_EQ(replayed->folded_entries, 16u);
  EXPECT_TRUE(replayed->entries.empty());  // folded into the checkpoint

  // Appends continue normally on the compacted log and replay on top of
  // the checkpoint summary.
  ASSERT_TRUE((*wal)->AppendSpend(1.0, "post-compact").ok());
  replayed = BudgetWal::Replay(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_NEAR(replayed->spent, spent + 1.0, 1e-9);
  ASSERT_EQ(replayed->entries.size(), 1u);
  EXPECT_EQ(replayed->entries[0].label, "post-compact");
}

TEST_F(BudgetWalTest, CheckpointWithoutThresholdAppendsInPlace) {
  const std::string path = Track(TempPath("ckpt_append"));
  std::remove(path.c_str());
  BudgetWal::Options options;
  options.compact_threshold_bytes = 0;  // never compact
  auto wal = BudgetWal::Open(path, 50.0, options);
  ASSERT_TRUE(wal.ok());
  ASSERT_TRUE((*wal)->AppendSpend(1.0, "a").ok());
  const uint64_t before = (*wal)->SizeBytes();
  ASSERT_TRUE((*wal)->AppendCheckpoint(3).ok());
  EXPECT_GT((*wal)->SizeBytes(), before);
  auto replayed = BudgetWal::Replay(path);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(replayed->last_checkpoint_generation, 3u);
  EXPECT_NEAR(replayed->spent, 1.0, 1e-12);
}

// Write-ahead ordering through the accountant: an injected WAL failure
// must abort the spend with nothing admitted in memory, and the record
// rolled back on disk so later appends replay cleanly.
TEST_F(BudgetWalTest, WalFailureAbortsSpendWithoutMemoryMutation) {
  const std::string path = Track(TempPath("abort"));
  std::remove(path.c_str());
  auto wal = BudgetWal::Open(path, 10.0);
  ASSERT_TRUE(wal.ok());
  BudgetAccountant acct(10.0);
  acct.AttachWal(wal->get());

  ASSERT_TRUE(acct.Spend(1.0, "ok-spend").ok());
  {
    ScopedFault fault = ScopedFault::OnNth(faults::kBudgetWalFsync, 1);
    Status st = acct.Spend(2.0, "doomed-spend");
    ASSERT_FALSE(st.ok());
  }
  EXPECT_NEAR(acct.spent(), 1.0, 1e-12);  // memory never admitted it
  ASSERT_TRUE(acct.Spend(0.5, "after-fault").ok());

  auto replayed = BudgetWal::Replay(path);
  ASSERT_TRUE(replayed.ok()) << replayed.status().ToString();
  EXPECT_FALSE(replayed->torn_tail);  // the doomed frame was rolled back
  EXPECT_NEAR(replayed->spent, 1.5, 1e-12);
  ASSERT_EQ(replayed->entries.size(), 2u);
  EXPECT_EQ(replayed->entries[1].label, "after-fault");
}

TEST_F(BudgetWalTest, RecoveredAccountantStacksAndHardFails) {
  // The recovery constructor seeds spent; composition continues against
  // the same lifetime total and hard-fails before exceeding it.
  BudgetAccountant acct(2.0, 1.5, {});
  EXPECT_FALSE(acct.poisoned());
  EXPECT_NEAR(acct.spent(), 1.5, 1e-12);
  EXPECT_TRUE(acct.Spend(0.5, "fits").ok());
  Status st = acct.Spend(0.5, "over");
  EXPECT_EQ(st.code(), StatusCode::kPrivacyError);
}

TEST_F(BudgetWalTest, GarbageRecoveredSpentPoisons) {
  for (double bad : {std::nan(""), -1.0,
                     std::numeric_limits<double>::infinity()}) {
    BudgetAccountant acct(2.0, bad, {});
    EXPECT_TRUE(acct.poisoned()) << bad;
    EXPECT_DOUBLE_EQ(acct.total(), 0.0) << bad;
    EXPECT_FALSE(acct.Spend(0.1, "refused").ok()) << bad;
  }
  // Over-counted recovery (spent > total) is NOT poison — it is the safe
  // direction; there is simply nothing left to spend.
  BudgetAccountant over(2.0, 3.0, {});
  EXPECT_FALSE(over.poisoned());
  EXPECT_DOUBLE_EQ(over.remaining(), 0.0);
  EXPECT_FALSE(over.Spend(0.1, "nothing-left").ok());
}

}  // namespace
}  // namespace viewrewrite
