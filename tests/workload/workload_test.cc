#include "workload/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "datagen/census.h"
#include "datagen/tpch.h"
#include "rewrite/classifier.h"
#include "sql/parser.h"

namespace viewrewrite {
namespace {

TEST(WorkloadTest, QueryCountsMatchPaper) {
  EXPECT_EQ(WorkloadGenerator::QueryCount(1), 750);
  EXPECT_EQ(WorkloadGenerator::QueryCount(5), 12000);
  EXPECT_EQ(WorkloadGenerator::QueryCount(7), 1500);
  EXPECT_EQ(WorkloadGenerator::QueryCount(12), 1500);
  EXPECT_EQ(WorkloadGenerator::QueryCount(16), 200);
  EXPECT_EQ(WorkloadGenerator::QueryCount(20), 3200);
  EXPECT_EQ(WorkloadGenerator::QueryCount(27), 400);
  EXPECT_EQ(WorkloadGenerator::QueryCount(31), 3000);
  EXPECT_EQ(WorkloadGenerator::QueryCount(0), 0);
  EXPECT_EQ(WorkloadGenerator::QueryCount(32), 0);
}

TEST(WorkloadTest, InvalidIndexRejected) {
  WorkloadGenerator gen(1, 1);
  EXPECT_FALSE(gen.Generate(0).ok());
  EXPECT_FALSE(gen.Generate(32).ok());
}

TEST(WorkloadTest, EveryTpchQueryParses) {
  WorkloadGenerator gen(1, 7);
  for (int w : {1, 6, 11, 16, 21, 26}) {
    auto queries = gen.Generate(w);
    ASSERT_TRUE(queries.ok()) << w;
    // Check a sample (first 60) parses.
    for (size_t i = 0; i < std::min<size_t>(60, queries->size()); ++i) {
      auto stmt = ParseSelect((*queries)[i].sql);
      ASSERT_TRUE(stmt.ok()) << "W" << w << "[" << i
                             << "]: " << (*queries)[i].sql << "\n"
                             << stmt.status();
    }
  }
}

TEST(WorkloadTest, CensusQueriesParse) {
  WorkloadGenerator gen(1, 7);
  auto queries = gen.Generate(31);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries->size(), 3000u);
  for (size_t i = 0; i < 30; ++i) {
    EXPECT_TRUE(ParseSelect((*queries)[i].sql).ok()) << (*queries)[i].sql;
  }
}

TEST(WorkloadTest, Deterministic) {
  WorkloadGenerator a(1, 99);
  WorkloadGenerator b(1, 99);
  auto qa = a.Generate(16);
  auto qb = b.Generate(16);
  ASSERT_TRUE(qa.ok() && qb.ok());
  ASSERT_EQ(qa->size(), qb->size());
  for (size_t i = 0; i < qa->size(); ++i) {
    EXPECT_EQ((*qa)[i].sql, (*qb)[i].sql);
  }
}

TEST(WorkloadTest, AblationWorkloadsAreClassPure) {
  WorkloadGenerator gen(1, 3);
  Schema schema = MakeTpchSchema();
  auto correlated = gen.Generate(16);
  ASSERT_TRUE(correlated.ok());
  for (size_t i = 0; i < 40; ++i) {
    auto stmt = ParseSelect((*correlated)[i].sql);
    ASSERT_TRUE(stmt.ok());
    auto cls = Classify(**stmt, schema);
    ASSERT_TRUE(cls.ok()) << cls.status();
    EXPECT_TRUE(IsCorrelatedClass(*cls)) << (*correlated)[i].sql;
  }
  auto noncorr = gen.Generate(21);
  ASSERT_TRUE(noncorr.ok());
  for (size_t i = 0; i < 40; ++i) {
    auto stmt = ParseSelect((*noncorr)[i].sql);
    ASSERT_TRUE(stmt.ok());
    auto cls = Classify(**stmt, schema);
    ASSERT_TRUE(cls.ok());
    EXPECT_TRUE(IsNestedClass(*cls) && !IsCorrelatedClass(*cls))
        << (*noncorr)[i].sql;
  }
  auto derived = gen.Generate(26);
  ASSERT_TRUE(derived.ok());
  for (size_t i = 0; i < 40; ++i) {
    auto stmt = ParseSelect((*derived)[i].sql);
    ASSERT_TRUE(stmt.ok());
    auto cls = Classify(**stmt, schema);
    ASSERT_TRUE(cls.ok());
    EXPECT_TRUE(*cls == QueryClass::kFromDerivedTable ||
                *cls == QueryClass::kWithDerivedTable)
        << (*derived)[i].sql;
  }
}

TEST(WorkloadTest, SumWorkloadsUseSumAggregates) {
  WorkloadGenerator gen(1, 3);
  auto queries = gen.Generate(6);
  ASSERT_TRUE(queries.ok());
  int sums = 0;
  for (size_t i = 0; i < 30; ++i) {
    if ((*queries)[i].sql.find("SUM(") != std::string::npos) ++sums;
  }
  EXPECT_EQ(sums, 30);
}

TEST(WorkloadTest, SubqueryConstantsGrowSublinearly) {
  // The Zipf draws mean distinct subquery constants grow slower than the
  // workload — what drives PrivateSQL's sublinear view growth.
  WorkloadGenerator gen(1, 5);
  auto small = gen.Generate(16);   // 200 correlated queries
  auto large = gen.Generate(20);   // 3200 correlated queries
  ASSERT_TRUE(small.ok() && large.ok());
  auto distinct = [](const std::vector<WorkloadQuery>& qs) {
    std::set<std::string> s;
    for (const auto& q : qs) s.insert(q.sql);
    return s.size();
  };
  size_t ds = distinct(*small);
  size_t dl = distinct(*large);
  EXPECT_GT(dl, ds);
  EXPECT_LT(dl, 16 * ds);  // far from linear scaling
}

}  // namespace
}  // namespace viewrewrite
