#ifndef VIEWREWRITE_TESTS_CHAOS_KILL9_HARNESS_H_
#define VIEWREWRITE_TESTS_CHAOS_KILL9_HARNESS_H_

// Kill-nine chaos harness for the crash-durable budget ledger: one seed
// forks a child that drives a full publish -> save -> republish ->
// checkpoint schedule with a SIGKILL armed at a seed-drawn fault point
// (WAL append, WAL fsync, checkpoint compaction, bundle save, or the
// per-view delta rebuild). The child dies with no unwinding, destructors
// or flushes — exactly like a power cut. The parent then plays the
// recovery story and checks the invariants the WAL promises:
//
//   1. The child either finished cleanly or died of exactly SIGKILL.
//   2. The WAL on disk always replays: a kill can tear at most the final
//      record (dropped), never produce mid-log corruption, and never a
//      garbage epsilon. Replayed spent <= lifetime total.
//   3. Write-ahead ordering: every bundle generation visible on disk was
//      paid for first, so replayed spent >= the spent epsilon recorded in
//      the bundle's own ledger header. Over-counting is allowed
//      (a spend durable in the WAL whose noisy values never published);
//      under-counting never is.
//   4. The bundle itself is loadable or absent — rename atomicity means a
//      torn bundle is impossible, kill or no kill.
//   5. A restarted process pointed at the same WAL recovers: it opens the
//      log (truncating any torn tail), seeds its accountant with the
//      replayed spent, publishes and republishes on top, and hard-fails
//      with PrivacyError before the composed lifetime spend can exceed
//      the total. No crash, no corruption, no double-spent epsilon.
//   6. Orphaned temp files from the killed child (bundle saves and WAL
//      compactions both stage through `<path>.tmp.<pid>.<seq>`) are swept
//      by the recovery path once their owning pid is dead.
//
// Determinism: the kill site, its hit ordinal, the compaction threshold
// and the republish plan are all drawn from the seed before the fork, so
// a failing seed replays exactly.

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <dirent.h>
#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include <random>

#include "common/fault_injection.h"
#include "dp/budget_wal.h"
#include "engine/viewrewrite_engine.h"
#include "serve/synopsis_store.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace chaos {

struct KillNineConfig {
  /// Republish generations the child attempts after the initial publish.
  size_t num_generations = 4;
  /// Initial-publication and lifetime budgets (the recovery invariant is
  /// judged against the lifetime total).
  double epsilon = 6.0;
  double lifetime_epsilon = 12.0;
  double generation_epsilon = 0.8;
  /// Latest hit ordinal the SIGKILL may be armed at; the seed draws
  /// nth in [1, max_nth]. Large ordinals that are never reached make the
  /// child finish cleanly — clean-shutdown recovery is a case too.
  uint64_t max_nth = 12;
  /// Directory for the WAL + bundle; empty picks /tmp.
  std::string dir;
};

struct KillNineRunResult {
  bool child_killed = false;      // died of SIGKILL (the armed fault fired)
  bool child_clean_exit = false;  // ran the whole schedule
  std::string fault_point;
  uint64_t fault_nth = 0;
  uint64_t compact_threshold = 0;
  bool wal_found = false;
  bool torn_tail = false;
  bool bundle_found = false;
  double replayed_spent = 0;
  double replayed_total = 0;
  double bundle_spent = 0;
  /// Generations the recovery process successfully republished.
  uint64_t recovered_generations = 0;
  bool recovery_prepare_ok = false;
  /// Invariant violations; empty means the seed passed.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

namespace internal {

/// Everything the seed decides, drawn identically in parent and child.
struct KillNinePlan {
  const char* point = faults::kBudgetWalFsync;
  uint64_t nth = 1;
  uint64_t compact_threshold = 256 * 1024;
  uint64_t db_seed = 13;
  std::vector<std::vector<std::string>> changed;
};

inline KillNinePlan DrawKillNinePlan(uint64_t seed,
                                     const KillNineConfig& config) {
  std::mt19937_64 rng(seed ^ 0xc2b2ae3d27d4eb4fULL);
  static constexpr const char* kKillSites[] = {
      faults::kBudgetWalAppend, faults::kBudgetWalFsync,
      faults::kBudgetWalCheckpoint, faults::kServeSave,
      faults::kRepublishBuild,
  };
  KillNinePlan plan;
  plan.point = kKillSites[rng() % (sizeof(kKillSites) / sizeof(*kKillSites))];
  plan.nth = 1 + rng() % config.max_nth;
  // A third of the seeds compact aggressively so kills land inside the
  // checkpoint rewrite (temp write, rename, reopen), not just appends.
  plan.compact_threshold = (rng() % 3 == 0) ? 192 : 256 * 1024;
  plan.db_seed = 3 + rng() % 7;
  for (size_t i = 0; i < config.num_generations; ++i) {
    plan.changed.push_back(
        (rng() % 2 == 0) ? std::vector<std::string>{"orders"}
                         : std::vector<std::string>{"customer", "orders"});
  }
  return plan;
}

inline std::vector<std::string> KillNineWorkload() {
  return {
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64",
      "SELECT COUNT(*) FROM orders o WHERE o.o_status = 'f'",
      "SELECT SUM(o_totalprice) FROM orders o WHERE o.o_status = 'o'",
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND c.c_nation = 1",
  };
}

inline EngineOptions KillNineEngineOptions(uint64_t seed,
                                           const KillNineConfig& config,
                                           const KillNinePlan& plan,
                                           const std::string& wal_path) {
  EngineOptions options;
  options.seed = seed;
  options.epsilon = config.epsilon;
  options.lifetime_epsilon = config.lifetime_epsilon;
  options.budget_wal_path = wal_path;
  options.budget_wal_compact_bytes = plan.compact_threshold;
  return options;
}

/// One publish + republish pass: Prepare, save generation `first_gen`,
/// then `changed.size()` delta generations, each saved durably and
/// checkpointed into the WAL on success, refunded on save failure. Used
/// verbatim by the doomed child and by the recovering parent — recovery
/// IS a normal run on top of a replayed ledger.
inline void DriveSchedule(ViewRewriteEngine* engine, const Database& db,
                          const KillNineConfig& config,
                          const std::vector<std::vector<std::string>>& changed,
                          const std::string& bundle_path, uint64_t first_gen,
                          uint64_t* generations_published) {
  {
    Result<SynopsisStore> snapshot =
        SynopsisStore::FromManager(engine->views(), db.schema());
    if (snapshot.ok() && snapshot->Save(bundle_path).ok()) {
      (void)engine->CheckpointBudgetWal(first_gen);
      if (generations_published != nullptr) ++*generations_published;
    }
  }
  for (size_t i = 0; i < changed.size(); ++i) {
    const uint64_t gen = first_gen + 1 + i;
    Result<ViewManager::RepublishOutcome> outcome =
        engine->RepublishChanged(changed[i], config.generation_epsilon, gen);
    if (!outcome.ok()) {
      // PrivacyError (lifetime budget exhausted) and injected build
      // failures both end the generation before anything observable; the
      // schedule simply moves on.
      continue;
    }
    SynopsisStore::GenerationInfo info;
    info.generation = gen;
    info.generation_epsilon = outcome->epsilon_spent;
    info.changed_relations = changed[i];
    Result<SynopsisStore> snapshot = SynopsisStore::FromManager(
        engine->views(), db.schema(), std::move(info));
    if (!snapshot.ok() || !snapshot->Save(bundle_path).ok()) {
      // Nothing from this generation ever became observable: refund at
      // the documented discard boundary.
      (void)engine->RefundGeneration(*outcome);
      continue;
    }
    (void)engine->CheckpointBudgetWal(gen);
    if (generations_published != nullptr) ++*generations_published;
  }
}

#if defined(__unix__) || defined(__APPLE__)

/// Counts `<basename(path)>.tmp.` siblings still in path's directory.
inline size_t CountTempSiblings(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const std::string prefix =
      (slash == std::string::npos ? path : path.substr(slash + 1)) + ".tmp.";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  size_t count = 0;
  while (struct dirent* ent = ::readdir(d)) {
    if (std::string(ent->d_name).compare(0, prefix.size(), prefix) == 0) {
      ++count;
    }
  }
  ::closedir(d);
  return count;
}

inline void RemoveTempSiblings(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  std::string dir = slash == std::string::npos ? "." : path.substr(0, slash);
  if (dir.empty()) dir = "/";
  const std::string prefix =
      (slash == std::string::npos ? path : path.substr(slash + 1)) + ".tmp.";
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  std::vector<std::string> names;
  while (struct dirent* ent = ::readdir(d)) {
    if (std::string(ent->d_name).compare(0, prefix.size(), prefix) == 0) {
      names.push_back(dir + "/" + ent->d_name);
    }
  }
  ::closedir(d);
  for (const std::string& name : names) std::remove(name.c_str());
}

/// The doomed process: single-threaded, fault armed, full schedule, then
/// _exit(0) — never returns to the caller's stack.
[[noreturn]] inline void RunKillNineChild(uint64_t seed,
                                          const KillNineConfig& config,
                                          const internal::KillNinePlan& plan,
                                          const std::string& wal_path,
                                          const std::string& bundle_path) {
  std::unique_ptr<Database> db =
      testing_support::MakeTestDatabase(plan.db_seed, 40);
  ViewRewriteEngine engine(
      *db, PrivacyPolicy{"customer"},
      KillNineEngineOptions(seed, config, plan, wal_path));
  FaultInjection::Instance().KillOnNth(plan.point, plan.nth);
  const Status prepared = engine.Prepare(KillNineWorkload());
  if (prepared.ok()) {
    DriveSchedule(&engine, *db, config, plan.changed, bundle_path,
                  /*first_gen=*/0, nullptr);
  }
  // No destructors, no gtest teardown: the child's only legitimate ends
  // are this _exit and the armed SIGKILL.
  ::_exit(0);
}

#endif  // POSIX

}  // namespace internal

/// Runs one kill-nine seed end to end (fork, kill, recover). Never
/// throws; all failures land in KillNineRunResult::violations. On
/// non-POSIX platforms, returns an empty passing result. A nonzero
/// `nth_override` replaces the seed-drawn hit ordinal (directed tests:
/// earliest possible kill, or an ordinal never reached).
inline KillNineRunResult RunKillNineSeed(uint64_t seed,
                                         KillNineConfig config = {},
                                         uint64_t nth_override = 0) {
  KillNineRunResult result;
#if !defined(__unix__) && !defined(__APPLE__)
  (void)seed;
  (void)config;
  (void)nth_override;
  return result;
#else
  internal::KillNinePlan plan = internal::DrawKillNinePlan(seed, config);
  if (nth_override != 0) plan.nth = nth_override;
  result.fault_point = plan.point;
  result.fault_nth = plan.nth;
  result.compact_threshold = plan.compact_threshold;

  const std::string base =
      (config.dir.empty() ? std::string("/tmp") : config.dir) + "/vr_kill9_" +
      std::to_string(seed) + "_" + std::to_string(::getpid());
  const std::string wal_path = base + ".wal";
  const std::string bundle_path = base + ".vrsy";
  std::remove(wal_path.c_str());
  std::remove(bundle_path.c_str());

  auto violate = [&result](const std::string& what) {
    result.violations.push_back(what);
  };

  // ---- Fork the doomed child. ----------------------------------------------
  const pid_t pid = ::fork();
  if (pid < 0) {
    violate("fork failed");
    return result;
  }
  if (pid == 0) {
    internal::RunKillNineChild(seed, config, plan, wal_path, bundle_path);
  }
  int wait_status = 0;
  if (::waitpid(pid, &wait_status, 0) != pid) {
    violate("waitpid failed");
    return result;
  }
  if (WIFSIGNALED(wait_status)) {
    if (WTERMSIG(wait_status) == SIGKILL) {
      result.child_killed = true;
    } else {
      violate("child died of unexpected signal " +
              std::to_string(WTERMSIG(wait_status)));
    }
  } else if (WIFEXITED(wait_status) && WEXITSTATUS(wait_status) == 0) {
    result.child_clean_exit = true;
  } else {
    violate("child exited with unexpected status " +
            std::to_string(WEXITSTATUS(wait_status)));
  }

  // ---- Invariant 2: the WAL always replays, spent <= total. ----------------
  Result<BudgetWal::ReplayedLedger> replayed = BudgetWal::Replay(wal_path);
  if (!replayed.ok()) {
    if (replayed.status().code() != StatusCode::kNotFound) {
      violate("WAL replay after kill returned " + replayed.status().ToString() +
              " — a SIGKILL must never produce mid-log corruption");
    }
  } else {
    result.wal_found = true;
    result.torn_tail = replayed->torn_tail;
    result.replayed_spent = replayed->spent;
    result.replayed_total = replayed->total;
    if (replayed->has_total &&
        replayed->spent > replayed->total + 1e-6) {
      violate("replayed ledger over-spent: " +
              std::to_string(replayed->spent) + " of " +
              std::to_string(replayed->total));
    }
  }

  // ---- Invariants 3 + 4: bundle loadable or absent, and paid for. ----------
  std::unique_ptr<Database> db =
      testing_support::MakeTestDatabase(plan.db_seed, 40);
  Result<SynopsisStore> loaded = SynopsisStore::Load(bundle_path,
                                                     db->schema());
  if (!loaded.ok()) {
    if (loaded.status().code() != StatusCode::kNotFound) {
      violate("bundle after kill is torn: " + loaded.status().ToString());
    }
  } else {
    result.bundle_found = true;
    result.bundle_spent = loaded->ledger().spent_epsilon;
    if (!replayed.ok() || !replayed->has_total) {
      violate("a bundle is on disk but the WAL replays no ledger — its "
              "epsilon was never durably recorded");
    } else if (replayed->spent < loaded->ledger().spent_epsilon - 1e-6) {
      violate("write-ahead ordering broken: bundle records spent " +
              std::to_string(loaded->ledger().spent_epsilon) +
              " but the WAL replays only " + std::to_string(replayed->spent));
    }
  }

  // ---- Invariant 5: full recovery on the same WAL. -------------------------
  {
    ViewRewriteEngine engine(
        *db, PrivacyPolicy{"customer"},
        internal::KillNineEngineOptions(seed, config, plan, wal_path));
    const Status prepared = engine.Prepare(internal::KillNineWorkload());
    result.recovery_prepare_ok = prepared.ok();
    switch (prepared.code()) {
      case StatusCode::kOk:
      case StatusCode::kExecutionError:  // whole workload quarantined
      case StatusCode::kPrivacyError:    // budget already exhausted
        break;
      default:
        violate("recovery Prepare returned unexpected " + prepared.ToString());
    }
    if (prepared.ok()) {
      internal::DriveSchedule(&engine, *db, config, plan.changed, bundle_path,
                              /*first_gen=*/100,
                              &result.recovered_generations);
    }
    const EngineStats& stats = engine.stats();
    if (stats.budget_spent_epsilon >
        stats.budget_total_epsilon + 1e-6) {
      violate("recovery accountant over-spent: " +
              std::to_string(stats.budget_spent_epsilon) + " of " +
              std::to_string(stats.budget_total_epsilon));
    }
    // The kill -> recover -> republish cycle composes on one ledger: the
    // durable spend after everything must still respect the lifetime
    // total. (Checked from the WAL itself, not process memory.)
    if (engine.budget_wal() != nullptr &&
        engine.budget_wal()->SpentEpsilon() >
            config.lifetime_epsilon + 1e-6) {
      violate("lifetime epsilon double-spent across the kill: WAL records " +
              std::to_string(engine.budget_wal()->SpentEpsilon()) + " of " +
              std::to_string(config.lifetime_epsilon));
    }
    // Invariant 6: the recovery path swept the dead child's stranded
    // temps — the WAL's on open, the bundle's on load/save.
    if (engine.budget_wal() != nullptr &&
        internal::CountTempSiblings(wal_path) != 0) {
      violate("orphaned WAL temp files survived recovery");
    }
  }
  Result<SynopsisStore> final_load =
      SynopsisStore::Load(bundle_path, db->schema());
  if (final_load.ok() && internal::CountTempSiblings(bundle_path) != 0) {
    violate("orphaned bundle temp files survived recovery");
  }
  if (result.bundle_found && !final_load.ok()) {
    violate("bundle became unloadable after recovery: " +
            final_load.status().ToString());
  }

  std::remove(wal_path.c_str());
  std::remove(bundle_path.c_str());
  internal::RemoveTempSiblings(wal_path);
  internal::RemoveTempSiblings(bundle_path);
  return result;
#endif
}

}  // namespace chaos
}  // namespace viewrewrite

#endif  // VIEWREWRITE_TESTS_CHAOS_KILL9_HARNESS_H_
