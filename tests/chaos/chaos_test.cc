#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "chaos/chaos_harness.h"
#include "common/fault_injection.h"

namespace viewrewrite {
namespace {

/// Seeds the tier-1 suite pins (the 32-seed sweep lives in
/// bench/chaos_soak). Kept in one place so --list-seeds and the tests
/// cannot drift apart.
constexpr uint64_t kTier1Seeds[] = {1, 5, 7, 11, 23, 42};

/// Tier-1 chaos smoke: a handful of fixed seeds through the full
/// publish -> save -> load -> serve run with every fault point armed.
/// The 32-seed sweep lives in bench/chaos_soak (ctest label "chaos",
/// excluded from tier-1); these seeds keep the invariants continuously
/// exercised in the default test run.
class ChaosSmokeTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().DisableAll(); }
};

TEST_F(ChaosSmokeTest, FixedSeedsHoldAllInvariants) {
  chaos::ChaosConfig config;
  config.num_requests = 200;
  for (uint64_t seed : {1u, 7u, 23u}) {
    chaos::ChaosRunResult run = chaos::RunChaosSeed(seed, config);
    for (const std::string& violation : run.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
  }
}

TEST_F(ChaosSmokeTest, ZeroFaultSeedServesEverythingFresh) {
  // Probability bounds at zero turn the harness into a plain end-to-end
  // run: everything must answer, bit-identical, nothing stale.
  chaos::ChaosConfig config;
  config.num_requests = 120;
  config.max_publish_fault_p = 0;
  config.max_serve_fault_p = 0;
  chaos::ChaosRunResult run = chaos::RunChaosSeed(5, config);
  EXPECT_TRUE(run.ok()) << run.violations.front();
  EXPECT_TRUE(run.prepare_ok);
  EXPECT_EQ(run.stale, 0u);
  EXPECT_GT(run.fresh, 0u);
  // With no faults armed every planned republish generation publishes,
  // rebuilds at least one view, and stays within the lifetime budget.
  EXPECT_TRUE(run.republish_attempted);
  EXPECT_EQ(run.generations_published, config.num_republishes);
  EXPECT_EQ(run.generations_attempted, run.generations_published);
  EXPECT_GT(run.views_rebuilt, 0u);
  EXPECT_EQ(run.rebuild_failures, 0u);
  // Batched iterations fan one request slot into three futures, so the
  // accepted total can exceed num_requests; every accepted request still
  // answers fresh or expires on a tight injected deadline.
  EXPECT_GE(run.submitted, config.num_requests);
  EXPECT_EQ(run.fresh + run.errors, run.submitted);
  // The zero-fault run still exercises the coalescing machinery: batch
  // duplicates dedup at admission, so waiters exist even when nothing
  // is ever slow.
  EXPECT_GT(run.coalesced_waiters, 0u);
}

TEST_F(ChaosSmokeTest, HighFaultRateStillNeverViolatesInvariants) {
  // Near the configured ceiling the serve path fails constantly; the
  // contract is not "answers happen" but "only allowed outcomes happen".
  chaos::ChaosConfig config;
  config.num_requests = 150;
  config.max_publish_fault_p = 0.4;
  config.max_serve_fault_p = 0.6;
  for (uint64_t seed : {11u, 42u}) {
    chaos::ChaosRunResult run = chaos::RunChaosSeed(seed, config);
    for (const std::string& violation : run.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
  }
}

}  // namespace
}  // namespace viewrewrite

namespace {

/// Runs one seed directly (outside gtest) and prints a human-readable
/// report. Exit code 0 iff every invariant held.
int RunSingleSeed(uint64_t seed) {
  viewrewrite::chaos::ChaosConfig config;
  viewrewrite::chaos::ChaosRunResult run =
      viewrewrite::chaos::RunChaosSeed(seed, config);
  std::printf(
      "seed %llu: published_views=%llu fresh=%llu stale=%llu errors=%llu\n"
      "  submitted=%llu flights=%llu coalesced=%llu cache_hits=%llu "
      "expired=%llu\n"
      "  generations attempted=%llu published=%llu views_rebuilt=%llu "
      "rebuild_failures=%llu outdated_served=%llu\n",
      (unsigned long long)seed, (unsigned long long)run.published_views,
      (unsigned long long)run.fresh, (unsigned long long)run.stale,
      (unsigned long long)run.errors, (unsigned long long)run.submitted,
      (unsigned long long)run.flights,
      (unsigned long long)run.coalesced_waiters,
      (unsigned long long)run.cache_short_circuits,
      (unsigned long long)run.expired_in_queue,
      (unsigned long long)run.generations_attempted,
      (unsigned long long)run.generations_published,
      (unsigned long long)run.views_rebuilt,
      (unsigned long long)run.rebuild_failures,
      (unsigned long long)run.outdated_served);
  if (run.ok()) {
    std::printf("  PASS: all invariants held\n");
    return 0;
  }
  for (const std::string& violation : run.violations) {
    std::printf("  VIOLATION: %s\n", violation.c_str());
  }
  return 1;
}

}  // namespace

/// Custom main so one failing seed can be replayed in isolation:
///   chaos_test --seed=N     run exactly that seed, print its report
///   chaos_test --list-seeds print the tier-1 pinned seeds, one per line
/// With neither flag, the normal gtest suite runs (gtest flags intact).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-seeds") == 0) {
      for (uint64_t seed : viewrewrite::kTier1Seeds) {
        std::printf("%llu\n", (unsigned long long)seed);
      }
      return 0;
    }
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      char* end = nullptr;
      const unsigned long long seed = std::strtoull(argv[i] + 7, &end, 10);
      if (end == argv[i] + 7 || *end != '\0') {
        std::fprintf(stderr, "chaos_test: bad --seed value: %s\n",
                     argv[i] + 7);
        return 2;
      }
      return RunSingleSeed(seed);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
