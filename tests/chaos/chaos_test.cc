#include <gtest/gtest.h>

#include "chaos/chaos_harness.h"
#include "common/fault_injection.h"

namespace viewrewrite {
namespace {

/// Tier-1 chaos smoke: a handful of fixed seeds through the full
/// publish -> save -> load -> serve run with every fault point armed.
/// The 32-seed sweep lives in bench/chaos_soak (ctest label "chaos",
/// excluded from tier-1); these seeds keep the invariants continuously
/// exercised in the default test run.
class ChaosSmokeTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().DisableAll(); }
};

TEST_F(ChaosSmokeTest, FixedSeedsHoldAllInvariants) {
  chaos::ChaosConfig config;
  config.num_requests = 200;
  for (uint64_t seed : {1u, 7u, 23u}) {
    chaos::ChaosRunResult run = chaos::RunChaosSeed(seed, config);
    for (const std::string& violation : run.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
  }
}

TEST_F(ChaosSmokeTest, ZeroFaultSeedServesEverythingFresh) {
  // Probability bounds at zero turn the harness into a plain end-to-end
  // run: everything must answer, bit-identical, nothing stale.
  chaos::ChaosConfig config;
  config.num_requests = 120;
  config.max_publish_fault_p = 0;
  config.max_serve_fault_p = 0;
  chaos::ChaosRunResult run = chaos::RunChaosSeed(5, config);
  EXPECT_TRUE(run.ok()) << run.violations.front();
  EXPECT_TRUE(run.prepare_ok);
  EXPECT_EQ(run.stale, 0u);
  EXPECT_GT(run.fresh, 0u);
  // Batched iterations fan one request slot into three futures, so the
  // accepted total can exceed num_requests; every accepted request still
  // answers fresh or expires on a tight injected deadline.
  EXPECT_GE(run.submitted, config.num_requests);
  EXPECT_EQ(run.fresh + run.errors, run.submitted);
  // The zero-fault run still exercises the coalescing machinery: batch
  // duplicates dedup at admission, so waiters exist even when nothing
  // is ever slow.
  EXPECT_GT(run.coalesced_waiters, 0u);
}

TEST_F(ChaosSmokeTest, HighFaultRateStillNeverViolatesInvariants) {
  // Near the configured ceiling the serve path fails constantly; the
  // contract is not "answers happen" but "only allowed outcomes happen".
  chaos::ChaosConfig config;
  config.num_requests = 150;
  config.max_publish_fault_p = 0.4;
  config.max_serve_fault_p = 0.6;
  for (uint64_t seed : {11u, 42u}) {
    chaos::ChaosRunResult run = chaos::RunChaosSeed(seed, config);
    for (const std::string& violation : run.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
  }
}

}  // namespace
}  // namespace viewrewrite
