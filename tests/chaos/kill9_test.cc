#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "chaos/kill9_harness.h"
#include "common/fault_injection.h"

namespace viewrewrite {
namespace {

/// Tier-1 kill-nine pins (the 32-seed sweep lives in bench/kill9_soak).
constexpr uint64_t kTier1Seeds[] = {1, 3, 7, 12, 19, 29};

/// Tier-1 kill-nine smoke: fork a child driving publish -> republish ->
/// checkpoint against a write-ahead budget ledger, SIGKILL it at a
/// deterministically drawn fault point, then recover in the parent and
/// assert the crash-durability invariants (tests/chaos/kill9_harness.h):
/// WAL replay is a valid prefix or typed corruption, never garbage
/// epsilon; every durable bundle's spent is covered by the replayed
/// ledger; recovery republishes without double-spending the lifetime
/// budget; no orphan temp files survive recovery.
class KillNineSmokeTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().DisableAll(); }
};

TEST_F(KillNineSmokeTest, FixedSeedsHoldAllInvariants) {
  chaos::KillNineConfig config;
  for (uint64_t seed : kTier1Seeds) {
    chaos::KillNineRunResult run = chaos::RunKillNineSeed(seed, config);
    for (const std::string& violation : run.violations) {
      ADD_FAILURE() << "seed " << seed << " (point=" << run.fault_point
                    << " nth=" << run.fault_nth << "): " << violation;
    }
  }
}

TEST_F(KillNineSmokeTest, LateFaultPointLetsChildFinishCleanly) {
  // An nth far beyond the schedule's append count never fires: the child
  // must run the whole schedule and exit 0, and recovery must still hold.
  chaos::KillNineConfig config;
  config.max_nth = 1;  // plan draws nth=1, but we override below
  chaos::KillNineRunResult run = chaos::RunKillNineSeed(
      /*seed=*/4, config, /*nth_override=*/100000);
  for (const std::string& violation : run.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(run.child_clean_exit);
  EXPECT_FALSE(run.child_killed);
  EXPECT_TRUE(run.wal_found);
  EXPECT_TRUE(run.bundle_found);
  // After a clean full schedule most of the lifetime budget is spent, so
  // the recovery publish is expected to degrade with PrivacyError rather
  // than double-spend — the harness invariants (no over-spend, ledger
  // covers the bundle) are what must hold, not a successful re-publish.
  EXPECT_FALSE(run.recovery_prepare_ok);
  EXPECT_GE(run.replayed_spent, run.bundle_spent - 1e-9);
}

TEST_F(KillNineSmokeTest, EarliestAppendKillLeavesRecoverableLedger) {
  // nth=1 on the very first WAL append: the child dies before anything
  // noisy exists. Recovery must see either no WAL or a replayable one.
  chaos::KillNineConfig config;
  chaos::KillNineRunResult run = chaos::RunKillNineSeed(
      /*seed=*/0, config, /*nth_override=*/1);
  for (const std::string& violation : run.violations) {
    ADD_FAILURE() << violation;
  }
  EXPECT_TRUE(run.child_killed || run.child_clean_exit);
}

}  // namespace
}  // namespace viewrewrite

namespace {

/// Runs one seed directly (outside gtest) and prints a human-readable
/// report. Exit code 0 iff every invariant held.
int RunSingleSeed(uint64_t seed) {
  viewrewrite::chaos::KillNineConfig config;
  viewrewrite::chaos::KillNineRunResult run =
      viewrewrite::chaos::RunKillNineSeed(seed, config);
  std::printf(
      "seed %llu: point=%s nth=%llu compact=%llu killed=%d clean=%d\n"
      "  wal_found=%d torn=%d replayed_spent=%.6f/%.6f bundle_found=%d "
      "bundle_spent=%.6f\n"
      "  recovery_prepare_ok=%d recovered_generations=%llu\n",
      (unsigned long long)seed, run.fault_point.c_str(),
      (unsigned long long)run.fault_nth,
      (unsigned long long)run.compact_threshold, (int)run.child_killed,
      (int)run.child_clean_exit, (int)run.wal_found, (int)run.torn_tail,
      run.replayed_spent, run.replayed_total, (int)run.bundle_found,
      run.bundle_spent, (int)run.recovery_prepare_ok,
      (unsigned long long)run.recovered_generations);
  if (run.ok()) {
    std::printf("  PASS: all invariants held\n");
    return 0;
  }
  for (const std::string& violation : run.violations) {
    std::printf("  VIOLATION: %s\n", violation.c_str());
  }
  return 1;
}

}  // namespace

/// Custom main so one failing seed can be replayed in isolation:
///   kill9_test --seed=N     run exactly that seed, print its report
///   kill9_test --list-seeds print the tier-1 pinned seeds, one per line
/// With neither flag, the normal gtest suite runs (gtest flags intact).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-seeds") == 0) {
      for (uint64_t seed : viewrewrite::kTier1Seeds) {
        std::printf("%llu\n", (unsigned long long)seed);
      }
      return 0;
    }
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      char* end = nullptr;
      const unsigned long long seed = std::strtoull(argv[i] + 7, &end, 10);
      if (end == argv[i] + 7 || *end != '\0') {
        std::fprintf(stderr, "kill9_test: bad --seed value: %s\n",
                     argv[i] + 7);
        return 2;
      }
      return RunSingleSeed(seed);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
