#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "chaos/overload_harness.h"

namespace viewrewrite {
namespace {

/// Seeds the tier-1 suite pins (the 32-seed sweep lives in
/// bench/overload_soak).
constexpr uint64_t kTier1Seeds[] = {1, 2, 3};

/// Tier-1 overload smoke: a few fixed seeds through the open-loop
/// harness with shortened phases. The full-length 32-seed sweep lives in
/// bench/overload_soak (ctest label "chaos", excluded from tier-1).
TEST(OverloadSmokeTest, FixedSeedsHoldTheOverloadContract) {
  chaos::OverloadConfig config;
  config.calibration = std::chrono::milliseconds(150);
  config.phase = std::chrono::milliseconds(250);
  for (uint64_t seed : kTier1Seeds) {
    chaos::OverloadRunResult run = chaos::RunOverloadSeed(seed, config);
    for (const std::string& violation : run.violations) {
      ADD_FAILURE() << "seed " << seed << ": " << violation;
    }
    EXPECT_GT(run.capacity_qps, 0) << "seed " << seed;
    ASSERT_EQ(run.phases.size(), config.load_factors.size());
    // The phases genuinely overloaded the server: something was shed or
    // expired at the highest factor (otherwise the run measured nothing).
    const chaos::OverloadPhaseResult& worst = run.phases.back();
    EXPECT_GT(worst.shed + worst.expired, 0u)
        << "seed " << seed << ": 10x capacity produced no overload";
  }
}

}  // namespace
}  // namespace viewrewrite

namespace {

/// Runs one seed directly (outside gtest) and prints a report; exit code
/// 0 iff the overload contract held.
int RunSingleSeed(uint64_t seed) {
  viewrewrite::chaos::OverloadRunResult run =
      viewrewrite::chaos::RunOverloadSeed(seed);
  std::printf("seed %llu: capacity=%.0f qps\n", (unsigned long long)seed,
              run.capacity_qps);
  for (const auto& p : run.phases) {
    std::printf(
        "  %.0fx: issued=%llu offered=%.0f goodput=%.0f fresh=%llu "
        "shed=%llu expired=%llu shed_p99=%.3fms drain=%.2fs "
        "interactive=%llu/%llu background=%llu/%llu\n",
        p.load_factor, (unsigned long long)p.issued, p.offered_qps,
        p.goodput_qps, (unsigned long long)p.fresh,
        (unsigned long long)p.shed, (unsigned long long)p.expired,
        p.shed_p99_ms, p.drain_seconds,
        (unsigned long long)p.interactive_ok,
        (unsigned long long)p.interactive_issued,
        (unsigned long long)p.background_ok,
        (unsigned long long)p.background_issued);
  }
  std::printf(
      "  accounting: issued=%llu submitted=%llu shed_admission=%llu "
      "shed_hopeless=%llu shed_displaced=%llu limiter_limit=%.1f\n",
      (unsigned long long)run.issued, (unsigned long long)run.submitted,
      (unsigned long long)run.shed_admission,
      (unsigned long long)run.shed_hopeless,
      (unsigned long long)run.shed_displaced, run.limiter_limit);
  if (run.ok()) {
    std::printf("  PASS: overload contract held\n");
    return 0;
  }
  for (const std::string& violation : run.violations) {
    std::printf("  VIOLATION: %s\n", violation.c_str());
  }
  return 1;
}

}  // namespace

/// Custom main so one failing seed can be replayed in isolation:
///   overload_test --seed=N     run exactly that seed, print its report
///   overload_test --list-seeds print the tier-1 pinned seeds
/// With neither flag, the normal gtest suite runs (gtest flags intact).
int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--list-seeds") == 0) {
      for (uint64_t seed : viewrewrite::kTier1Seeds) {
        std::printf("%llu\n", (unsigned long long)seed);
      }
      return 0;
    }
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      char* end = nullptr;
      const unsigned long long seed = std::strtoull(argv[i] + 7, &end, 10);
      if (end == argv[i] + 7 || *end != '\0') {
        std::fprintf(stderr, "overload_test: bad --seed value: %s\n",
                     argv[i] + 7);
        return 2;
      }
      return RunSingleSeed(seed);
    }
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
