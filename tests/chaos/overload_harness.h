#ifndef VIEWREWRITE_TESTS_CHAOS_OVERLOAD_HARNESS_H_
#define VIEWREWRITE_TESTS_CHAOS_OVERLOAD_HARNESS_H_

// Open-loop overload harness: measures the serve path's behavior when the
// offered load exceeds capacity — the regime a closed-loop driver can
// never produce, because closed-loop clients slow down with the server.
//
// One seed drives one run: publish a small workload, measure capacity
// closed-loop, then blast open-loop phases at multiples of it (paced by a
// 1ms submission tick, so arrivals keep coming whether or not the server
// keeps up) with a mixed priority population, and check the overload
// contract:
//
//   1. No congestion collapse: goodput (fresh answers/s) at every
//      overload factor stays a healthy fraction of the best phase's
//      goodput. An unprotected queue collapses here — every request
//      waits, every deadline expires, goodput goes to ~0.
//   2. Typed, fast shedding: every non-answer is one of
//      {ResourceExhausted, Unavailable, DeadlineExceeded}; admission
//      sheds resolve synchronously (the future is ready when Submit
//      returns) and cheaply.
//   3. Bounded drain: when arrivals stop, every outstanding future
//      resolves within the request deadline plus slack — accepted
//      requests never linger unboundedly behind the load.
//   4. No priority inversion: interactive traffic's success rate is
//      never materially below background's (strict-priority dequeue and
//      lowest-class-first shedding working end to end).
//   5. Answer integrity under pressure: every successful answer is
//      bit-identical to the fault-free baseline — overload changes who
//      gets served, never what they are told.
//   6. Accounting closes: the extended conservation law over the
//      server's own stats balances, and every issued request is
//      accounted for exactly once at admission
//      (submitted + rejected + shed_admission + brownout_served).
//
// The run is fault-free: everything observed is genuine queueing, not an
// injected failure. Determinism caveat: wall-clock capacity and per-phase
// counts vary with the machine; the checked bounds are chosen to hold on
// a loaded single-core CI box, while the strict performance gates live in
// the committed BENCH_serve.json (see bench/serve_throughput.cc).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <future>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "engine/viewrewrite_engine.h"
#include "serve/overload.h"
#include "serve/query_server.h"
#include "serve/synopsis_store.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace chaos {

struct OverloadConfig {
  /// Closed-loop capacity measurement duration.
  std::chrono::milliseconds calibration{250};
  /// Duration of each open-loop phase.
  std::chrono::milliseconds phase{400};
  /// Offered load per phase, as multiples of the measured capacity.
  std::vector<double> load_factors = {2.0, 4.0, 10.0};
  /// Per-request deadline during the open-loop phases; also the yardstick
  /// for the drain bound (invariant 3).
  std::chrono::milliseconds deadline{100};
  /// Slack added to `deadline` for the post-phase drain bound.
  std::chrono::seconds drain_slack{10};
  /// Collapse floor: every phase's goodput must stay above this fraction
  /// of the best phase's. Deliberately generous — a collapsing queue
  /// lands near zero, an adapting one near 1.
  double min_goodput_fraction = 0.35;
  /// Inversion tolerance: interactive success rate may trail background
  /// by at most this much (sampling noise allowance), and only phases
  /// where both classes issued at least `min_class_sample` requests are
  /// judged.
  double inversion_tolerance = 0.10;
  uint64_t min_class_sample = 50;
  /// Admission sheds must resolve within this bound (invariant 2). The
  /// real figure is microseconds; the bound only has to separate
  /// "synchronous" from "queued behind the backlog".
  std::chrono::milliseconds shed_latency_bound{100};
  /// Serve-side knobs under test.
  size_t num_threads = 2;
  size_t queue_capacity = 64;
  double limiter_initial = 16;
  double limiter_min = 2;
  double limiter_max = 64;
  std::chrono::milliseconds target_queue_latency{2};
};

struct OverloadPhaseResult {
  double load_factor = 0;
  uint64_t issued = 0;
  uint64_t fresh = 0;
  uint64_t shed = 0;     // ResourceExhausted / Unavailable
  uint64_t expired = 0;  // DeadlineExceeded
  double goodput_qps = 0;
  double offered_qps = 0;
  double shed_p99_ms = 0;      // admission sheds: Submit-call wall time
  double drain_seconds = 0;    // last submit -> all futures resolved
  uint64_t interactive_issued = 0, interactive_ok = 0;
  uint64_t background_issued = 0, background_ok = 0;
};

struct OverloadRunResult {
  double capacity_qps = 0;
  std::vector<OverloadPhaseResult> phases;
  // Final server stats, after every phase drained.
  uint64_t issued = 0;
  uint64_t submitted = 0;
  uint64_t shed_admission = 0;
  uint64_t shed_hopeless = 0;
  uint64_t shed_displaced = 0;
  uint64_t brownout_served = 0;
  double limiter_limit = 0;
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

namespace overload_internal {

/// One issued request's bookkeeping, paired positionally with its future.
struct Issue {
  size_t query = 0;
  Priority priority = Priority::kInteractive;
  bool ready_at_submit = false;
  std::chrono::nanoseconds submit_wall{0};
};

inline bool IsAllowedOverloadError(StatusCode code) {
  switch (code) {
    case StatusCode::kResourceExhausted:  // admission shed / displaced
    case StatusCode::kUnavailable:        // queue full (no victim)
    case StatusCode::kDeadlineExceeded:   // expired or hopeless-dropped
      return true;
    default:
      return false;
  }
}

inline double P99Ms(std::vector<std::chrono::nanoseconds> samples) {
  if (samples.empty()) return 0;
  std::sort(samples.begin(), samples.end());
  const size_t idx = (samples.size() * 99) / 100;
  return std::chrono::duration<double, std::milli>(
             samples[std::min(idx, samples.size() - 1)])
      .count();
}

/// Seeded 60/30/10 interactive/batch/background draw.
inline Priority DrawPriority(std::mt19937_64& rng) {
  const uint64_t r = rng() % 10;
  if (r < 6) return Priority::kInteractive;
  if (r < 9) return Priority::kBatch;
  return Priority::kBackground;
}

}  // namespace overload_internal

/// Runs one seeded open-loop overload scenario. Never throws; failures
/// are reported through OverloadRunResult::violations.
inline OverloadRunResult RunOverloadSeed(uint64_t seed,
                                         OverloadConfig config = {}) {
  using Clock = std::chrono::steady_clock;
  namespace oi = overload_internal;
  OverloadRunResult result;
  auto violate = [&result](const std::string& what) {
    result.violations.push_back(what);
  };
  std::mt19937_64 rng(seed ^ 0xd6e8feb86659fd93ULL);

  // ---- Publish the standard workload; all answers are deterministic. -------
  std::unique_ptr<Database> db = testing_support::MakeTestDatabase(13, 40);
  const std::vector<std::string> workload = {
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64",
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 128",
      "SELECT COUNT(*) FROM orders o WHERE o.o_status = 'f'",
      "SELECT SUM(o_totalprice) FROM orders o WHERE o.o_status = 'o'",
  };
  EngineOptions engine_options;
  engine_options.seed = seed;
  ViewRewriteEngine engine(*db, PrivacyPolicy{"customer"}, engine_options);
  const Status prepared = engine.Prepare(workload);
  if (!prepared.ok()) {
    violate("prepare failed: " + prepared.ToString());
    return result;
  }
  std::vector<double> baseline(workload.size(), 0);
  for (size_t i = 0; i < workload.size(); ++i) {
    Result<double> ans = engine.NoisyAnswer(i);
    if (!ans.ok()) {
      violate("baseline answer failed: " + ans.status().ToString());
      return result;
    }
    baseline[i] = *ans;
  }
  Result<SynopsisStore> snapshot =
      SynopsisStore::FromManager(engine.views(), db->schema());
  if (!snapshot.ok()) {
    violate("FromManager failed: " + snapshot.status().ToString());
    return result;
  }

  // ---- The server under test. ----------------------------------------------
  // Cache and coalescing off: a tiny distinct-query pool would otherwise
  // absorb the entire overload into cache hits and the phases would
  // measure the cache, not the queue.
  ServeOptions serve_options;
  serve_options.num_threads = config.num_threads;
  serve_options.queue_capacity = config.queue_capacity;
  serve_options.enable_cache = false;
  serve_options.enable_coalescing = false;
  serve_options.overload.limiter.enabled = true;
  serve_options.overload.limiter.initial_limit = config.limiter_initial;
  serve_options.overload.limiter.min_limit = config.limiter_min;
  serve_options.overload.limiter.max_limit = config.limiter_max;
  serve_options.overload.limiter.target_queue_latency =
      config.target_queue_latency;
  QueryServer server(
      std::make_shared<const SynopsisStore>(std::move(*snapshot)),
      db->schema(), serve_options);

  uint64_t issued_total = 0;

  // ---- Closed-loop calibration: one request at a time, full pipeline. ------
  // This is by construction at capacity for one worker: the next request
  // is only offered when the previous one finished.
  uint64_t calib_done = 0;
  {
    const Clock::time_point until = Clock::now() + config.calibration;
    while (Clock::now() < until) {
      const size_t qi = calib_done % workload.size();
      Result<ServedAnswer> got = server.Submit(workload[qi]).get();
      ++issued_total;
      if (!got.ok()) {
        violate("calibration request failed: " + got.status().ToString());
        return result;
      }
      if (got->value != baseline[qi]) {
        violate("calibration answer diverged from baseline");
        return result;
      }
      ++calib_done;
    }
  }
  result.capacity_qps =
      static_cast<double>(calib_done) /
      std::chrono::duration<double>(config.calibration).count();
  if (calib_done < 10) {
    violate("calibration produced only " + std::to_string(calib_done) +
            " answers; machine too slow for a meaningful run");
    return result;
  }

  // ---- Open-loop phases. ---------------------------------------------------
  for (const double factor : config.load_factors) {
    OverloadPhaseResult phase;
    phase.load_factor = factor;
    const double target_qps = result.capacity_qps * factor;
    const std::chrono::nanoseconds tick = std::chrono::milliseconds(1);
    const double per_tick =
        target_qps * std::chrono::duration<double>(tick).count();

    std::vector<oi::Issue> issues;
    std::vector<std::future<Result<ServedAnswer>>> futures;
    issues.reserve(static_cast<size_t>(per_tick * 500) + 16);
    futures.reserve(issues.capacity());

    const Clock::time_point phase_start = Clock::now();
    const Clock::time_point phase_end = phase_start + config.phase;
    Clock::time_point next_tick = phase_start;
    double carry = 0;
    while (Clock::now() < phase_end) {
      next_tick += tick;
      std::this_thread::sleep_until(next_tick);
      carry += per_tick;
      auto n = static_cast<size_t>(carry);
      carry -= static_cast<double>(n);
      for (size_t i = 0; i < n; ++i) {
        oi::Issue issue;
        issue.query = rng() % workload.size();
        issue.priority = oi::DrawPriority(rng);
        const Clock::time_point t0 = Clock::now();
        std::future<Result<ServedAnswer>> f =
            server.Submit(workload[issue.query], {}, config.deadline,
                          issue.priority);
        issue.submit_wall = Clock::now() - t0;
        issue.ready_at_submit =
            f.wait_for(std::chrono::seconds(0)) == std::future_status::ready;
        issues.push_back(issue);
        futures.push_back(std::move(f));
      }
    }
    const Clock::time_point submit_stop = Clock::now();
    phase.issued = issues.size();
    issued_total += issues.size();
    phase.offered_qps =
        static_cast<double>(phase.issued) /
        std::chrono::duration<double>(submit_stop - phase_start).count();

    // Drain: every future must resolve within deadline + slack of the
    // last submission (invariant 3).
    const Clock::time_point drain_bound =
        submit_stop + config.deadline + config.drain_slack;
    std::vector<std::chrono::nanoseconds> shed_latencies;
    for (size_t i = 0; i < futures.size(); ++i) {
      const auto left = drain_bound - Clock::now();
      if (futures[i].wait_for(std::max(left, Clock::duration::zero())) !=
          std::future_status::ready) {
        violate("drain bound exceeded at factor " + std::to_string(factor) +
                ": request " + std::to_string(i) + " of " +
                std::to_string(futures.size()) + " still unresolved");
        return result;  // .get() below could hang; stop the run here
      }
      Result<ServedAnswer> got = futures[i].get();
      const oi::Issue& issue = issues[i];
      const bool interactive = issue.priority == Priority::kInteractive;
      const bool background = issue.priority == Priority::kBackground;
      if (interactive) ++phase.interactive_issued;
      if (background) ++phase.background_issued;
      if (got.ok()) {
        ++phase.fresh;
        if (interactive) ++phase.interactive_ok;
        if (background) ++phase.background_ok;
        // Invariant 5: overload never changes an answer's value.
        if (got->value != baseline[issue.query]) {
          violate("answer diverged under load at factor " +
                  std::to_string(factor) + ": got " +
                  std::to_string(got->value) + " want " +
                  std::to_string(baseline[issue.query]));
        }
      } else if (!oi::IsAllowedOverloadError(got.status().code())) {
        violate("disallowed error under overload: " +
                got.status().ToString());
      } else if (got.status().code() == StatusCode::kDeadlineExceeded) {
        ++phase.expired;
      } else {
        ++phase.shed;
        if (issue.ready_at_submit) {
          shed_latencies.push_back(issue.submit_wall);
        }
      }
    }
    phase.drain_seconds =
        std::chrono::duration<double>(Clock::now() - submit_stop).count();
    phase.goodput_qps =
        static_cast<double>(phase.fresh) /
        std::chrono::duration<double>(submit_stop - phase_start).count();
    phase.shed_p99_ms = oi::P99Ms(std::move(shed_latencies));

    // Invariant 2: admission sheds are synchronous and cheap. Judged on
    // the Submit-call wall time of futures that were ready at submit.
    if (phase.shed_p99_ms >
        std::chrono::duration<double, std::milli>(config.shed_latency_bound)
            .count()) {
      violate("admission-shed p99 " + std::to_string(phase.shed_p99_ms) +
              "ms exceeds bound at factor " + std::to_string(factor));
    }
    result.phases.push_back(phase);
  }

  // Invariant 1: no congestion collapse across the factors.
  double peak = 0;
  for (const OverloadPhaseResult& p : result.phases) {
    peak = std::max(peak, p.goodput_qps);
  }
  if (peak <= 0) {
    violate("no phase produced any goodput");
  } else {
    for (const OverloadPhaseResult& p : result.phases) {
      if (p.goodput_qps < config.min_goodput_fraction * peak) {
        violate("congestion collapse at factor " +
                std::to_string(p.load_factor) + ": goodput " +
                std::to_string(p.goodput_qps) + " qps vs peak " +
                std::to_string(peak) + " qps");
      }
    }
  }

  // Invariant 4: no priority inversion, judged per adequately-sampled
  // phase.
  for (const OverloadPhaseResult& p : result.phases) {
    if (p.interactive_issued < config.min_class_sample ||
        p.background_issued < config.min_class_sample) {
      continue;
    }
    const double irate = static_cast<double>(p.interactive_ok) /
                         static_cast<double>(p.interactive_issued);
    const double brate = static_cast<double>(p.background_ok) /
                         static_cast<double>(p.background_issued);
    if (irate + config.inversion_tolerance < brate) {
      violate("priority inversion at factor " +
              std::to_string(p.load_factor) + ": interactive " +
              std::to_string(irate) + " vs background " +
              std::to_string(brate));
    }
  }

  // Invariant 6: the books close. Everything has drained, so the
  // conservation law must balance exactly, and every issued request was
  // accounted once at admission.
  server.Shutdown();
  const ServeStats stats = server.stats();
  result.issued = issued_total;
  result.submitted = stats.submitted;
  result.shed_admission = stats.shed_admission;
  result.shed_hopeless = stats.shed_hopeless;
  result.shed_displaced = stats.shed_displaced;
  result.brownout_served = stats.brownout_served;
  result.limiter_limit = stats.limiter_limit;
  if (stats.flights + stats.coalesced_waiters + stats.cache_short_circuits +
          stats.expired_in_queue + stats.shed_hopeless +
          stats.shed_displaced !=
      stats.submitted) {
    violate("conservation violated: flights " + std::to_string(stats.flights) +
            " + coalesced " + std::to_string(stats.coalesced_waiters) +
            " + cache " + std::to_string(stats.cache_short_circuits) +
            " + expired_in_queue " + std::to_string(stats.expired_in_queue) +
            " + shed_queue " + std::to_string(stats.shed_queue) +
            " != submitted " + std::to_string(stats.submitted));
  }
  if (stats.submitted + stats.rejected + stats.shed_admission +
          stats.brownout_served !=
      issued_total) {
    violate("admission accounting violated: submitted " +
            std::to_string(stats.submitted) + " + rejected " +
            std::to_string(stats.rejected) + " + shed_admission " +
            std::to_string(stats.shed_admission) + " + brownout_served " +
            std::to_string(stats.brownout_served) + " != issued " +
            std::to_string(issued_total));
  }
  return result;
}

}  // namespace chaos
}  // namespace viewrewrite

#endif  // VIEWREWRITE_TESTS_CHAOS_OVERLOAD_HARNESS_H_
