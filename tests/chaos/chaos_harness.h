#ifndef VIEWREWRITE_TESTS_CHAOS_CHAOS_HARNESS_H_
#define VIEWREWRITE_TESTS_CHAOS_CHAOS_HARNESS_H_

// Deterministic chaos harness: one seed drives one full
// publish -> save -> load -> serve run with every registered fault point
// armed at seed-derived probabilities, and checks the system-wide
// invariants the resilience layer promises:
//
//   1. No crash, no uncaught exception (the run returns).
//   2. No deadlock: every submitted future resolves within a bounded
//      wait; the whole run finishes in bounded wall time.
//   3. The privacy ledger is never over-spent, no matter which publish
//      stages failed (spent <= total, both in the engine accountant and
//      in the persisted bundle header).
//   4. Every served response is one of: bit-identical to the fault-free
//      answer, the same value flagged stale, or a typed error from the
//      small set the resilience layer emits. Nothing else — no silent
//      wrong answers.
//   5. Coalescing conservation: every accepted request resolves through
//      exactly one of the serve channels, so after shutdown
//        flights + coalesced_waiters + cache_short_circuits
//          + expired_in_queue + shed_hopeless + shed_displaced == submitted
//      holds exactly — coalescing under faults, reloads, deadlines and
//      overload shedding never loses or double-resolves a request.
//   6. Synopsis lifecycle: a Republisher races hot Reloads races query
//      traffic for the whole serve phase, with the republish fault points
//      armed. A torn bundle is impossible (any mid-run or final Load that
//      returns Corruption is a violation); every successful answer is
//      bit-identical to the baseline of the generation it claims
//      (wrong-epoch answers can never travel unflagged); the cross-epoch
//      budget ledger never exceeds the lifetime total no matter which
//      generations failed where (refunds only for generations that never
//      became observable); and no flight waiter is stranded by a swap.
//
// "Deterministic" means the fault schedule is fully reproducible from the
// seed (probabilistic triggers use dedicated seeded PRNGs); the checked
// invariants are valid under any thread interleaving.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "aggregate/grouped_result.h"
#include "aggregate/suppression.h"
#include "common/fault_injection.h"
#include "engine/viewrewrite_engine.h"
#include "serve/overload.h"
#include "serve/query_server.h"
#include "serve/republisher.h"
#include "serve/synopsis_store.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace chaos {

struct ChaosConfig {
  /// Requests submitted in the serve phase.
  size_t num_requests = 400;
  size_t num_threads = 4;
  /// Upper bound on injected-failure probability per fault point; the
  /// seed picks the actual value per phase in [0, max).
  double max_publish_fault_p = 0.25;
  double max_serve_fault_p = 0.35;
  /// Per-future resolution bound; exceeding it is the deadlock signal.
  std::chrono::seconds future_wait{60};
  /// Where the bundle goes; empty picks a per-seed name under /tmp.
  std::string bundle_path;
  /// Republish generations attempted by the lifecycle thread while the
  /// serve phase runs (each may retry internally under fresh generation
  /// numbers). 0 disables the lifecycle racing entirely.
  size_t num_republishes = 3;
};

struct ChaosRunResult {
  uint64_t published_views = 0;
  uint64_t fresh = 0;       // responses bit-identical to the baseline
  uint64_t stale = 0;       // degraded responses (value still baseline)
  uint64_t errors = 0;      // typed errors
  // Coalescing observability (from the server's post-shutdown stats):
  // how the accepted requests split across the four resolution channels,
  // and the largest single-flight group the seed produced.
  uint64_t submitted = 0;
  uint64_t flights = 0;
  uint64_t coalesced_waiters = 0;
  uint64_t cache_short_circuits = 0;
  uint64_t expired_in_queue = 0;
  uint64_t max_flight_group = 0;
  bool coalescing_enabled = false;
  bool prepare_ok = false;
  bool reload_attempted = false;
  // Synopsis-lifecycle observability (from the Republisher's stats and
  // the server's, after every thread joined).
  bool republish_attempted = false;
  uint64_t generations_attempted = 0;
  uint64_t generations_published = 0;
  uint64_t views_rebuilt = 0;
  uint64_t rebuild_failures = 0;
  uint64_t outdated_served = 0;
  // Grouped-serving observability: requests answered row-wise, rows the
  // minimum-frequency rule suppressed across all fresh grouped answers,
  // and the suppression threshold this seed served under.
  uint64_t grouped_fresh = 0;
  uint64_t suppressed_rows = 0;
  double min_group_count = 0;
  // Overload-control observability: admission sheds (injected fault or
  // saturated limiter), queue-discipline drops, displacement evictions,
  // and sheds the brownout converted into stale cache answers.
  bool limiter_enabled = false;
  bool brownout_enabled = false;
  uint64_t shed_admission = 0;
  uint64_t shed_hopeless = 0;
  uint64_t shed_displaced = 0;
  uint64_t brownout_served = 0;
  /// Invariant violations; empty means the seed passed.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

namespace internal {

inline double UniformP(std::mt19937_64& rng, double max_p) {
  return std::uniform_real_distribution<double>(0.0, max_p)(rng);
}

/// Typed errors the serve path may legitimately emit under injected
/// faults. Anything outside this set is an invariant violation.
inline bool IsAllowedServeError(StatusCode code) {
  switch (code) {
    case StatusCode::kInternal:           // the injected fault itself
    case StatusCode::kUnavailable:        // breaker open / queue / shutdown
    case StatusCode::kDeadlineExceeded:   // per-request deadline
    case StatusCode::kNotFound:           // no stored view covers the query
    case StatusCode::kResourceExhausted:  // overload shed (limiter/displaced)
      return true;
    default:
      return false;
  }
}

/// Typed errors a republish generation may legitimately end with under
/// injected faults. PrivacyError is the hard-fail-before-over-spend path
/// (the lifetime budget genuinely ran out — the invariant working, not
/// breaking). Corruption is conspicuously absent: a republish that reads
/// back a torn bundle would be a durability violation.
inline bool IsAllowedRepublishError(StatusCode code) {
  switch (code) {
    case StatusCode::kInternal:      // injected republish/build/save fault
    case StatusCode::kUnavailable:   // republish breaker open
    case StatusCode::kPrivacyError:  // lifetime budget exhausted
      return true;
    default:
      return false;
  }
}

/// A mid-run Reload(path) may fail only through the injected fault or the
/// store breaker. Corruption here means rename atomicity broke — a reader
/// saw a torn bundle.
inline bool IsAllowedReloadError(StatusCode code) {
  return code == StatusCode::kInternal || code == StatusCode::kUnavailable;
}

inline bool SameValue(const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  if (a.is_numeric() != b.is_numeric()) return false;
  if (a.is_numeric()) return a.ToDouble() == b.ToDouble();
  return a.AsString() == b.AsString();
}

/// Bit-identity for grouped answers, the row-wise analogue of the scalar
/// `got->value == baseline` check: same columns, same rows in the same
/// order, every cell identical, and the suppression flags matching —
/// so a served row is either baseline-exact or suppressed exactly where
/// the policy suppressed the baseline.
inline bool SameGroupedData(const aggregate::GroupedData& a,
                            const aggregate::GroupedData& b) {
  if (a.columns != b.columns || a.rows.size() != b.rows.size()) return false;
  for (size_t i = 0; i < a.rows.size(); ++i) {
    if (a.rows[i].suppressed != b.rows[i].suppressed) return false;
    if (a.rows[i].values.size() != b.rows[i].values.size()) return false;
    for (size_t j = 0; j < a.rows[i].values.size(); ++j) {
      if (!SameValue(a.rows[i].values[j], b.rows[i].values[j])) return false;
    }
  }
  return true;
}

}  // namespace internal

/// Runs one seeded chaos scenario end to end. Never throws; all failures
/// are reported through ChaosRunResult::violations.
inline ChaosRunResult RunChaosSeed(uint64_t seed, ChaosConfig config = {}) {
  ChaosRunResult result;
  // The republisher and reload threads report violations concurrently
  // with the main thread.
  std::mutex violations_mu;
  auto violate = [&result, &violations_mu](const std::string& what) {
    std::lock_guard<std::mutex> lock(violations_mu);
    result.violations.push_back(what);
  };
  std::mt19937_64 rng(seed ^ 0x9e3779b97f4a7c15ULL);
  FaultInjection& faults_registry = FaultInjection::Instance();
  faults_registry.DisableAll();

  // ---- Fixed workload over the mini TPC-H test database. -------------------
  std::unique_ptr<Database> db = testing_support::MakeTestDatabase(13, 40);
  const std::vector<std::string> workload = {
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64",
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 128",
      "SELECT COUNT(*) FROM orders o WHERE o.o_status = 'f'",
      "SELECT SUM(o_totalprice) FROM orders o WHERE o.o_status = 'o'",
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND c.c_nation = 1",
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64 OR "
      "o.o_status = 'p'",
      // Grouped aggregates: served row-wise through the same pipeline,
      // with the minimum-frequency rule suppressing small noisy groups
      // and HAVING evaluated post-noise. The AVG query registers only
      // (sum, count) measures — the serve path derives the ratio.
      "SELECT o_status, COUNT(*) FROM orders o GROUP BY o_status",
      "SELECT o_status, AVG(o_totalprice) FROM orders o GROUP BY o_status "
      "HAVING COUNT(*) >= 2",
  };

  // ---- Publish phase under injected faults (degraded mode). ----------------
  const double publish_p =
      internal::UniformP(rng, config.max_publish_fault_p);
  for (const char* point :
       {faults::kParse, faults::kRewrite, faults::kViewRegister,
        faults::kViewPublish, faults::kDpMechanism}) {
    faults_registry.FailWithProbability(point, publish_p, rng());
  }

  EngineOptions engine_options;
  engine_options.seed = seed;  // noise differs per seed; baseline tracks it
  // Lifetime reserve beyond the initial publication's epsilon: the serve
  // phase's republish generations draw from it under cross-epoch
  // sequential composition, and enough seeds exhaust it that the
  // hard-fail-before-over-spend path is exercised too.
  engine_options.lifetime_epsilon = 12.0;
  ViewRewriteEngine engine(*db, PrivacyPolicy{"customer"}, engine_options);
  const Status prepared = engine.Prepare(workload);
  faults_registry.DisableAll();
  result.prepare_ok = prepared.ok();
  result.published_views = engine.views().NumPublished();

  // Invariant 3, engine side: whatever failed, the ledger never
  // over-spends (refunds from failed view publications are netted out).
  const EngineStats& estats = engine.stats();
  if (estats.budget_spent_epsilon > estats.budget_total_epsilon + 1e-9) {
    violate("budget over-spent after faulted publish: spent " +
            std::to_string(estats.budget_spent_epsilon) + " of " +
            std::to_string(estats.budget_total_epsilon));
  }
  if (!prepared.ok() || result.published_views == 0) {
    // A fully-quarantined workload is a legitimate chaos outcome: the run
    // ends at publish with the budget invariant intact.
    return result;
  }

  // ---- Fault-free baseline: what each query must answer. -------------------
  // Computed from the chaos-published engine with all faults disarmed, so
  // the baseline reflects exactly the views that survived this seed's
  // publish-phase faults. Quarantined queries have no baseline value and
  // are excluded from value checks (any typed outcome is acceptable).
  // Suppression policy for this seed: sometimes off, sometimes biting
  // (per-group counts in the test DB hover around a dozen, so 12.0
  // suppresses whichever groups the noise lands low). The serve phase and
  // every baseline apply the identical policy — suppression is
  // deterministic post-processing of the noisy counts, so it can never
  // introduce divergence between them.
  const aggregate::SuppressionPolicy suppression{
      (rng() % 2 == 0) ? 12.0 : 0.0};
  result.min_group_count = suppression.min_group_count;

  std::vector<size_t> servable;
  std::vector<bool> is_grouped(workload.size(), false);
  std::vector<double> baseline(workload.size(), 0);
  std::map<size_t, aggregate::GroupedData> grouped_baseline;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (engine.IsGrouped(i)) {
      is_grouped[i] = true;
      Result<aggregate::GroupedData> rows = engine.GroupedAnswer(i);
      if (rows.ok()) {
        aggregate::ApplySuppression(suppression, &*rows);
        grouped_baseline[i] = std::move(*rows);
        servable.push_back(i);
      }
      continue;
    }
    Result<double> ans = engine.NoisyAnswer(i);
    if (ans.ok()) {
      baseline[i] = *ans;
      servable.push_back(i);
    }
  }
  if (servable.empty()) return result;

  // ---- Save/load through disk, with storage faults armed. ------------------
  const std::string path =
      config.bundle_path.empty()
          ? "/tmp/vr_chaos_" + std::to_string(seed) + ".vrsy"
          : config.bundle_path;
  Result<SynopsisStore> snapshot =
      SynopsisStore::FromManager(engine.views(), db->schema());
  if (!snapshot.ok()) {
    violate("FromManager failed on published views: " +
            snapshot.status().ToString());
    return result;
  }
  {
    ScopedFault save_fault = ScopedFault::WithProbability(
        faults::kServeSave, internal::UniformP(rng, config.max_serve_fault_p),
        rng());
    ScopedFault load_fault = ScopedFault::WithProbability(
        faults::kServeLoad, internal::UniformP(rng, config.max_serve_fault_p),
        rng());
    // A failed save or load is retried; the final attempt below runs
    // clean, so the serve phase always starts from a good bundle.
    for (int attempt = 0; attempt < 3; ++attempt) {
      if (snapshot->Save(path).ok() &&
          SynopsisStore::Load(path, db->schema()).ok()) {
        break;
      }
    }
  }
  if (!snapshot->Save(path).ok()) {
    violate("fault-free Save failed after chaos saves");
    return result;
  }
  Result<SynopsisStore> loaded = SynopsisStore::Load(path, db->schema());
  if (!loaded.ok()) {
    violate("fault-free Load failed after chaos saves: " +
            loaded.status().ToString());
    return result;
  }
  // Invariant 3, bundle side: the persisted ledger is consistent.
  if (loaded->ledger().spent_epsilon > loaded->ledger().total_epsilon + 1e-9) {
    violate("persisted ledger over-spent");
  }

  // ---- Serve phase under answer/reload faults. -----------------------------
  ServeOptions serve_options;
  serve_options.num_threads = config.num_threads;
  // Batched submissions fan one loop iteration into several futures, so
  // the queue must absorb more than num_requests tasks.
  serve_options.queue_capacity = config.num_requests * 3 + 16;
  serve_options.enable_cache = (rng() % 4) != 0;  // mostly on, sometimes off
  serve_options.enable_coalescing = (rng() % 5) != 0;  // mostly on
  result.coalescing_enabled = serve_options.enable_coalescing;
  serve_options.retry.max_attempts = 3;
  serve_options.retry.initial_backoff = std::chrono::microseconds(50);
  serve_options.retry.max_backoff = std::chrono::microseconds(400);
  serve_options.answer_breaker.failure_threshold = 6;
  serve_options.answer_breaker.open_duration = std::chrono::milliseconds(2);
  serve_options.serve_stale = true;
  serve_options.min_group_count = suppression.min_group_count;
  // Overload control, seed-varied. This harness is closed-loop (submit
  // everything, then wait), so deep queues are its normal operating
  // point; the limiter is sized to the queue so its slot accounting,
  // AIMD events and release-on-every-path lifecycle race with faults,
  // displacement and shutdown without genuine-saturation sheds drowning
  // the run (the open-loop overload harness owns that regime). Admission
  // sheds here come from the serve.overload fault armed below; some
  // seeds enable brownout so a slice of those sheds comes back as stale
  // cache answers instead of typed errors.
  serve_options.overload.limiter.enabled = (rng() % 2 == 0);
  serve_options.overload.limiter.initial_limit =
      static_cast<double>(serve_options.queue_capacity);
  serve_options.overload.limiter.min_limit =
      static_cast<double>(serve_options.queue_capacity);
  serve_options.overload.limiter.max_limit =
      static_cast<double>(serve_options.queue_capacity) * 2;
  serve_options.overload.enable_brownout = (rng() % 2 == 0);
  serve_options.overload.brownout_shed_threshold = 4;
  result.limiter_enabled = serve_options.overload.limiter.enabled;
  result.brownout_enabled = serve_options.overload.enable_brownout;

  uint64_t deadline_hits = 0;
  {
    QueryServer server(
        std::make_shared<const SynopsisStore>(std::move(*loaded)),
        db->schema(), serve_options);

    ScopedFault answer_fault = ScopedFault::WithProbability(
        faults::kServeAnswer,
        internal::UniformP(rng, config.max_serve_fault_p), rng());
    ScopedFault reload_fault = ScopedFault::WithProbability(
        faults::kServeReload,
        internal::UniformP(rng, config.max_serve_fault_p), rng());
    ScopedFault reload_load_fault = ScopedFault::WithProbability(
        faults::kServeLoad,
        internal::UniformP(rng, config.max_serve_fault_p), rng());
    // Synopsis-lifecycle fault points: entering a generation, the
    // per-view delta rebuild, the durable save, and the bundle swap.
    ScopedFault republish_fault = ScopedFault::WithProbability(
        faults::kServeRepublish,
        internal::UniformP(rng, config.max_serve_fault_p), rng());
    ScopedFault rebuild_fault = ScopedFault::WithProbability(
        faults::kRepublishBuild,
        internal::UniformP(rng, config.max_serve_fault_p), rng());
    ScopedFault swap_fault = ScopedFault::WithProbability(
        faults::kRepublishSwap,
        internal::UniformP(rng, config.max_serve_fault_p), rng());
    ScopedFault repub_save_fault = ScopedFault::WithProbability(
        faults::kServeSave,
        internal::UniformP(rng, config.max_serve_fault_p), rng());
    // Admission-shed fault: forces the overload shed path (typed
    // ResourceExhausted, or a stale brownout answer when enabled) on a
    // slice of submissions regardless of genuine load.
    ScopedFault overload_fault = ScopedFault::WithProbability(
        faults::kServeOverload,
        internal::UniformP(rng, config.max_serve_fault_p / 2), rng());

    // Per-generation baselines: generation -> (query index -> the exact
    // value that generation's cells answer). Generation 0 is the initial
    // publication; later entries are recorded by the on_saved hook at the
    // only unambiguous moment — after the bundle is durable, before the
    // swap, while the republish lock still excludes the next generation.
    // A generation that saved but failed to swap still gets a baseline,
    // because a mid-run Reload(path) can legitimately serve it.
    std::mutex baselines_mu;
    std::map<uint64_t, std::map<size_t, double>> gen_baselines;
    std::map<uint64_t, std::map<size_t, aggregate::GroupedData>> gen_grouped;
    {
      std::map<size_t, double>& g0 = gen_baselines[0];
      for (size_t qi : servable) {
        if (!is_grouped[qi]) g0[qi] = baseline[qi];
      }
      gen_grouped[0] = grouped_baseline;
    }

    // Pre-draw the lifecycle plan so thread scheduling never perturbs the
    // seed's deterministic fault schedule.
    std::vector<std::vector<std::string>> republish_plan;
    for (size_t i = 0; i < config.num_republishes; ++i) {
      republish_plan.push_back(
          (rng() % 2 == 0)
              ? std::vector<std::string>{"orders"}
              : std::vector<std::string>{"customer", "orders"});
    }

    RepublisherOptions repub_options;
    repub_options.bundle_path = path;
    repub_options.generation_epsilon = 0.8;
    repub_options.max_attempts = 2;
    repub_options.retry.max_attempts = 2;
    repub_options.retry.initial_backoff = std::chrono::microseconds(50);
    repub_options.retry.max_backoff = std::chrono::microseconds(400);
    repub_options.breaker.failure_threshold = 4;
    repub_options.breaker.open_duration = std::chrono::milliseconds(1);
    repub_options.cache_eviction_lag = 2;
    repub_options.on_saved = [&](uint64_t generation) {
      std::lock_guard<std::mutex> lock(baselines_mu);
      std::map<size_t, double>& g = gen_baselines[generation];
      std::map<size_t, aggregate::GroupedData>& gg = gen_grouped[generation];
      for (size_t qi : servable) {
        if (is_grouped[qi]) {
          Result<aggregate::GroupedData> rows = engine.GroupedAnswer(qi);
          if (rows.ok()) {
            aggregate::ApplySuppression(suppression, &*rows);
            gg[qi] = std::move(*rows);
          }
        } else {
          Result<double> ans = engine.NoisyAnswer(qi);
          if (ans.ok()) g[qi] = *ans;
        }
      }
    };
    Republisher republisher(&engine, db->schema(), &server, repub_options);
    result.republish_attempted = !republish_plan.empty();

    // The lifecycle race: republish generations, hot reloads from disk,
    // and query traffic all run concurrently for the whole serve phase.
    std::thread republish_thread([&] {
      for (const std::vector<std::string>& changed : republish_plan) {
        Result<RepublishReport> rep = republisher.RepublishNow(changed);
        if (!rep.ok() &&
            !internal::IsAllowedRepublishError(rep.status().code())) {
          violate("unexpected republish error: " + rep.status().ToString());
        }
      }
    });
    std::thread reload_thread([&] {
      for (int i = 0; i < 2; ++i) {
        std::this_thread::sleep_for(std::chrono::microseconds(700));
        Status st = server.Reload(path);
        if (!st.ok() && !internal::IsAllowedReloadError(st.code())) {
          violate("mid-run reload returned disallowed error "
                  "(torn bundle?): " + st.ToString());
        }
      }
    });

    std::vector<size_t> request_query;
    std::vector<std::future<Result<ServedAnswer>>> futures;
    request_query.reserve(config.num_requests);
    futures.reserve(config.num_requests);
    for (size_t r = 0; r < config.num_requests; ++r) {
      const size_t qi = servable[r % servable.size()];
      // Seed-drawn priority class: strict-priority dequeue and
      // lowest-class-first shedding run against a mixed population, and
      // every class must satisfy the same answer invariants.
      const Priority prio = static_cast<Priority>(rng() % kNumPriorities);
      request_query.push_back(qi);
      if (r % 13 == 7) {
        // Batched duplicate submission: three copies of the same text in
        // one SubmitBatch. The duplicates dedup within the batch and must
        // resolve to exactly what their primary resolves to.
        std::vector<std::future<Result<ServedAnswer>>> batch =
            server.SubmitBatch({workload[qi], workload[qi], workload[qi]},
                               {}, std::chrono::nanoseconds(0), prio);
        for (auto& f : batch) futures.push_back(std::move(f));
        // Three futures came back for one loop iteration: record the
        // query index for the two extra ones too.
        request_query.push_back(qi);
        request_query.push_back(qi);
      } else if (r % 7 == 3) {
        // A sprinkle of tight deadlines; expiry is an allowed outcome.
        futures.push_back(server.Submit(workload[qi], {},
                                        std::chrono::microseconds(200), prio));
      } else {
        futures.push_back(server.Submit(workload[qi], {},
                                        std::chrono::nanoseconds(0), prio));
      }
      if (r == config.num_requests / 2) {
        // Mid-traffic hot reload of the same bundle: epoch advances,
        // in-flight queries finish against the old epoch, and the
        // baseline stays valid because the cells are identical. Failure
        // is fine — the old bundle keeps serving — but only through the
        // allowed error set: Corruption would mean a torn bundle.
        result.reload_attempted = true;
        Status st = server.Reload(path);
        if (!st.ok() && !internal::IsAllowedReloadError(st.code())) {
          violate("mid-loop reload returned disallowed error "
                  "(torn bundle?): " + st.ToString());
        }
      }
    }

    // Quiesce the lifecycle before judging answers: once both threads
    // join, gen_baselines is complete and immutable, so the value checks
    // below read it without locking.
    republish_thread.join();
    reload_thread.join();

    // Invariants 2 and 4/6: every future resolves in bounded time, to a
    // value bit-identical to the baseline of the generation it claims, a
    // stale copy from some published generation, or an allowed typed
    // error.
    for (size_t r = 0; r < futures.size(); ++r) {
      if (futures[r].wait_for(config.future_wait) !=
          std::future_status::ready) {
        violate("deadlock suspected: request " + std::to_string(r) +
                " unresolved after bounded wait");
        return result;  // .get() below would hang; stop here
      }
      Result<ServedAnswer> got = futures[r].get();
      const size_t qi = request_query[r];
      if (got.ok() && is_grouped[qi]) {
        // Grouped answers are judged row-wise: every served row must be
        // bit-identical to the claimed generation's baseline row —
        // baseline-exact where the baseline is exact, suppressed exactly
        // where the policy suppressed the baseline. Stale grouped
        // answers must match SOME generation's baseline row set.
        if (got->stale) {
          ++result.stale;
        } else {
          ++result.fresh;
          ++result.grouped_fresh;
        }
        if (got->rows == nullptr) {
          violate("grouped response for query " + std::to_string(qi) +
                  " carries no rows");
          continue;
        }
        for (const aggregate::GroupedRow& row : got->rows->rows) {
          if (row.suppressed) ++result.suppressed_rows;
        }
        if (got->stale) {
          bool known = false;
          for (const auto& gen : gen_grouped) {
            auto it = gen.second.find(qi);
            if (it != gen.second.end() &&
                internal::SameGroupedData(*got->rows, it->second)) {
              known = true;
              break;
            }
          }
          if (!known) {
            violate("stale grouped response for query " + std::to_string(qi) +
                    " matches no generation's baseline row set");
          }
        } else {
          auto gen_it = gen_grouped.find(got->generation);
          if (gen_it == gen_grouped.end() ||
              gen_it->second.find(qi) == gen_it->second.end()) {
            violate("grouped query " + std::to_string(qi) +
                    " has no baseline in generation " +
                    std::to_string(got->generation));
          } else if (!internal::SameGroupedData(*got->rows,
                                                gen_it->second.at(qi))) {
            violate("grouped response for query " + std::to_string(qi) +
                    " diverged from generation " +
                    std::to_string(got->generation) +
                    " baseline: a row is neither baseline-exact nor "
                    "suppressed-by-policy");
          }
        }
        continue;
      }
      if (got.ok()) {
        if (got->stale) {
          // A stale answer is a cached value from some earlier epoch; the
          // entry does not carry its generation, so the check is
          // membership: the value must be bit-identical to SOME
          // generation's baseline for this query. Anything else is a
          // silent wrong answer.
          bool known = false;
          for (const auto& gen : gen_baselines) {
            auto it = gen.second.find(qi);
            if (it != gen.second.end() && it->second == got->value) {
              known = true;
              break;
            }
          }
          if (!known) {
            violate("stale response for query " + std::to_string(qi) +
                    " matches no generation's baseline: got " +
                    std::to_string(got->value));
          }
          ++result.stale;
        } else {
          // Fresh answers claim a generation; they must be bit-identical
          // to that generation's baseline — a wrong-epoch answer can
          // never travel unflagged.
          auto gen_it = gen_baselines.find(got->generation);
          if (gen_it == gen_baselines.end()) {
            violate("fresh response for query " + std::to_string(qi) +
                    " claims unknown generation " +
                    std::to_string(got->generation));
          } else {
            auto val_it = gen_it->second.find(qi);
            if (val_it == gen_it->second.end()) {
              violate("query " + std::to_string(qi) +
                      " has no baseline in generation " +
                      std::to_string(got->generation));
            } else if (got->value != val_it->second) {
              violate("response for query " + std::to_string(qi) +
                      " diverged from generation " +
                      std::to_string(got->generation) + " baseline: got " +
                      std::to_string(got->value) + " want " +
                      std::to_string(val_it->second));
            }
          }
          ++result.fresh;
        }
      } else {
        ++result.errors;
        if (!internal::IsAllowedServeError(got.status().code())) {
          violate("unexpected error type for query " + std::to_string(qi) +
                  ": " + got.status().ToString());
        }
        if (got.status().code() == StatusCode::kDeadlineExceeded) {
          ++deadline_hits;
        }
      }
    }

    server.Shutdown();
    const ServeStats sstats = server.stats();
    if (sstats.completed != result.fresh + result.stale) {
      violate("stats.completed disagrees with resolved futures");
    }
    if (sstats.deadline_exceeded != deadline_hits) {
      violate("stats.deadline_exceeded disagrees with observed responses");
    }
    // Invariant 5: conservation. Every accepted request went through
    // exactly one resolution channel — it led a flight, joined one,
    // short-circuited on a fresh cache hit, expired while queued, or was
    // shed by the queue discipline (hopeless drop / displacement).
    result.submitted = sstats.submitted;
    result.flights = sstats.flights;
    result.coalesced_waiters = sstats.coalesced_waiters;
    result.cache_short_circuits = sstats.cache_short_circuits;
    result.expired_in_queue = sstats.expired_in_queue;
    result.max_flight_group = sstats.max_flight_group;
    result.shed_admission = sstats.shed_admission;
    result.shed_hopeless = sstats.shed_hopeless;
    result.shed_displaced = sstats.shed_displaced;
    result.brownout_served = sstats.brownout_served;
    if (sstats.flights + sstats.coalesced_waiters +
            sstats.cache_short_circuits + sstats.expired_in_queue +
            sstats.shed_queue !=
        sstats.submitted) {
      violate("conservation violated: flights " +
              std::to_string(sstats.flights) + " + coalesced_waiters " +
              std::to_string(sstats.coalesced_waiters) +
              " + cache_short_circuits " +
              std::to_string(sstats.cache_short_circuits) +
              " + expired_in_queue " +
              std::to_string(sstats.expired_in_queue) + " + shed_queue " +
              std::to_string(sstats.shed_queue) + " != submitted " +
              std::to_string(sstats.submitted));
    }
    // Admission-side accounting: sheds and brownout conversions happen
    // before a request is accepted, so they never double-count against
    // the submitted channels above.
    if (sstats.brownout_served > sstats.completed) {
      violate("brownout_served exceeds completed");
    }
    if (!serve_options.enable_coalescing && sstats.coalesced_waiters >
            sstats.batch_deduped) {
      violate("coalesced waiters observed with coalescing disabled "
              "(beyond batch dedup)");
    }
    if (sstats.max_flight_group > 0 && sstats.flights == 0) {
      violate("flight group recorded without any flight");
    }

    // Invariant 6: lifecycle observability + cross-epoch budget. Every
    // generation, published or refunded, charged the ONE lifetime ledger
    // under sequential composition; whatever mix of faults this seed
    // produced, the engine accountant never exceeds the lifetime total.
    result.outdated_served = sstats.outdated_served;
    const RepublisherStats rstats = republisher.stats();
    result.generations_attempted = rstats.generations_attempted;
    result.generations_published = rstats.generations_published;
    result.views_rebuilt = rstats.views_rebuilt;
    result.rebuild_failures = rstats.rebuild_failures;
    const EngineStats& post = engine.stats();
    if (post.budget_spent_epsilon > post.budget_total_epsilon + 1e-9) {
      violate("cross-epoch budget over-spent after republishes: spent " +
              std::to_string(post.budget_spent_epsilon) + " of " +
              std::to_string(post.budget_total_epsilon));
    }
  }

  faults_registry.DisableAll();
  // Durability epilogue: whatever interleaving of saves, republishes and
  // crashes-by-fault this seed produced, the bundle on disk must be a
  // complete, loadable generation with a consistent ledger — rename
  // atomicity means a torn file is impossible.
  Result<SynopsisStore> final_load = SynopsisStore::Load(path, db->schema());
  if (!final_load.ok()) {
    violate("final fault-free Load failed (torn or missing bundle): " +
            final_load.status().ToString());
  } else if (final_load->ledger().spent_epsilon >
             final_load->ledger().total_epsilon + 1e-9) {
    violate("final persisted ledger over-spent");
  }
  std::remove(path.c_str());
  return result;
}

}  // namespace chaos
}  // namespace viewrewrite

#endif  // VIEWREWRITE_TESTS_CHAOS_CHAOS_HARNESS_H_
