#include "common/strings.h"

#include <gtest/gtest.h>

namespace viewrewrite {
namespace {

TEST(StringsTest, ToLowerUpper) {
  EXPECT_EQ(ToLower("SeLeCt"), "select");
  EXPECT_EQ(ToUpper("SeLeCt"), "SELECT");
  EXPECT_EQ(ToLower(""), "");
}

TEST(StringsTest, EqualsIgnoreCase) {
  EXPECT_TRUE(EqualsIgnoreCase("FROM", "from"));
  EXPECT_TRUE(EqualsIgnoreCase("", ""));
  EXPECT_FALSE(EqualsIgnoreCase("FROM", "FRO"));
  EXPECT_FALSE(EqualsIgnoreCase("abc", "abd"));
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split(",", ','), (std::vector<std::string>{"", ""}));
}

TEST(StringsTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringsTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\nabc\r "), "abc");
  EXPECT_EQ(Trim("   "), "");
}

TEST(StringsTest, StartsWith) {
  EXPECT_TRUE(StartsWith("select *", "select"));
  EXPECT_FALSE(StartsWith("sel", "select"));
  EXPECT_TRUE(StartsWith("anything", ""));
}

}  // namespace
}  // namespace viewrewrite
