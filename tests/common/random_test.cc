#include "common/random.h"

#include <gtest/gtest.h>

#include <cmath>

namespace viewrewrite {
namespace {

TEST(RandomTest, DeterministicFromSeed) {
  Random a(123);
  Random b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000000), b.UniformInt(0, 1000000));
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1000000) == b.UniformInt(0, 1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RandomTest, UniformIntRespectsBounds) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(RandomTest, UniformDoubleInUnitInterval) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RandomTest, LaplaceMeanAndScale) {
  Random rng(99);
  const double scale = 3.0;
  const int n = 200000;
  double sum = 0;
  double abs_sum = 0;
  for (int i = 0; i < n; ++i) {
    double x = rng.Laplace(scale);
    sum += x;
    abs_sum += std::fabs(x);
  }
  // Laplace(0, b): E[X] = 0, E[|X|] = b.
  EXPECT_NEAR(sum / n, 0.0, 0.1);
  EXPECT_NEAR(abs_sum / n, scale, 0.1);
}

TEST(RandomTest, ZipfStaysInRangeAndSkews) {
  Random rng(5);
  const int64_t n = 100;
  int64_t ones = 0;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.Zipf(n, 1.2);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, n);
    if (v == 1) ++ones;
  }
  // Rank 1 should be far more likely than uniform (1% of draws).
  EXPECT_GT(ones, 1000);
}

TEST(RandomTest, ForkProducesIndependentStream) {
  Random a(42);
  Random child = a.Fork();
  // The fork consumed state; parent and child should not mirror each other.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(0, 1 << 30) == child.UniformInt(0, 1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

}  // namespace
}  // namespace viewrewrite
