#include "common/limits.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <sstream>

namespace viewrewrite {
namespace {

TEST(ResourceLimitsTest, DefaultsAreSaneAndStable) {
  const ResourceLimits& d = ResourceLimits::Defaults();
  EXPECT_EQ(d.max_sql_bytes, 1u << 20);
  EXPECT_EQ(d.max_ast_depth, 400u);
  EXPECT_GT(d.max_tokens, 0u);
  EXPECT_GT(d.max_ast_nodes, 0u);
  EXPECT_GT(d.max_dnf_disjuncts, 0u);
  EXPECT_GT(d.max_ie_terms, 0u);
  EXPECT_GT(d.max_view_cells, 0u);
  EXPECT_GT(d.max_arena_bytes, 0u);
  // Defaults() returns a stable singleton.
  EXPECT_EQ(&ResourceLimits::Defaults(), &ResourceLimits::Defaults());
}

TEST(ResourceLimitsTest, UnboundedIsEffectivelyLimitless) {
  ResourceLimits u = ResourceLimits::Unbounded();
  EXPECT_EQ(u.max_sql_bytes, std::numeric_limits<size_t>::max());
  EXPECT_EQ(u.max_tokens, std::numeric_limits<size_t>::max());
  // Depth stays finite even "unbounded": it guards the call stack, which
  // is a physical resource no configuration can wish away.
  EXPECT_LT(u.max_ast_depth, std::numeric_limits<size_t>::max());
}

TEST(ResourceLimitsTest, StreamsReadably) {
  std::ostringstream os;
  os << ResourceLimits::Defaults();
  EXPECT_NE(os.str().find("ast_depth"), std::string::npos);
}

TEST(LimitTrackerTest, DepthTripsAtLimitAndRecoversOnLeave) {
  ResourceLimits limits;
  limits.max_ast_depth = 3;
  LimitTracker tracker(limits);
  EXPECT_TRUE(tracker.EnterDepth("x").ok());
  EXPECT_TRUE(tracker.EnterDepth("x").ok());
  EXPECT_TRUE(tracker.EnterDepth("x").ok());
  Status over = tracker.EnterDepth("x");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
  // A failed Enter must not consume depth: after one Leave, one Enter
  // succeeds again.
  tracker.LeaveDepth();
  EXPECT_TRUE(tracker.EnterDepth("x").ok());
}

TEST(LimitTrackerTest, NodeBudgetAccumulates) {
  ResourceLimits limits;
  limits.max_ast_nodes = 10;
  LimitTracker tracker(limits);
  EXPECT_TRUE(tracker.AddNodes(4, "x").ok());
  EXPECT_TRUE(tracker.AddNodes(6, "x").ok());
  Status over = tracker.AddNodes(1, "x");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
}

TEST(LimitTrackerTest, ByteBudgetIsOverflowSafe) {
  ResourceLimits limits;
  limits.max_arena_bytes = 100;
  LimitTracker tracker(limits);
  EXPECT_TRUE(tracker.AddBytes(60, "x").ok());
  // 60 + huge would wrap a naive sum; the guard must still trip.
  Status over =
      tracker.AddBytes(std::numeric_limits<size_t>::max() - 8, "x");
  ASSERT_FALSE(over.ok());
  EXPECT_EQ(over.code(), StatusCode::kResourceExhausted);
}

TEST(CheckedMulTest, DetectsOverflowExactly) {
  uint64_t out = 0;
  EXPECT_TRUE(CheckedMulU64(1u << 20, 1u << 20, &out));
  EXPECT_EQ(out, uint64_t{1} << 40);
  EXPECT_TRUE(CheckedMulU64(0, std::numeric_limits<uint64_t>::max(), &out));
  EXPECT_EQ(out, 0u);
  // 2^32 * 2^32 == 2^64: one past representable.
  EXPECT_FALSE(CheckedMulU64(uint64_t{1} << 32, uint64_t{1} << 32, &out));
  EXPECT_FALSE(CheckedMulU64(std::numeric_limits<uint64_t>::max(), 2, &out));
  // Largest representable product still succeeds.
  EXPECT_TRUE(
      CheckedMulU64(std::numeric_limits<uint64_t>::max(), 1, &out));
  EXPECT_EQ(out, std::numeric_limits<uint64_t>::max());
}

}  // namespace
}  // namespace viewrewrite
