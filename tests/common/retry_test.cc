#include "common/retry.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/deadline.h"

namespace viewrewrite {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

TEST(RetryableStatusTest, OnlyTransientCodesRetry) {
  EXPECT_TRUE(IsRetryableStatus(StatusCode::kUnavailable));
  EXPECT_TRUE(IsRetryableStatus(StatusCode::kInternal));

  EXPECT_FALSE(IsRetryableStatus(StatusCode::kOk));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kParseError));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kNotFound));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kCorruption));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kPrivacyError));
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kDeadlineExceeded));
}

TEST(RetryableStatusTest, ResourceExhaustedIsNeverRetryable) {
  // The overload-shed signal: retrying a shed re-offers the load that
  // caused the shedding, so a retry storm would amplify the very
  // overload the server is protecting itself from.
  EXPECT_FALSE(IsRetryableStatus(StatusCode::kResourceExhausted));
}

TEST(RetryBudgetTest, InitialTokensAllowEarlyRetriesThenRatioGoverns) {
  RetryBudgetOptions options;
  options.initial_tokens = 2;
  options.ratio = 0.1;
  options.max_tokens = 100;
  RetryBudget budget(options);
  EXPECT_TRUE(budget.TryRetry());
  EXPECT_TRUE(budget.TryRetry());
  // The free allowance is spent; with no requests recorded, retries stop.
  EXPECT_FALSE(budget.TryRetry());
  EXPECT_EQ(budget.exhausted(), 1u);
  // Ten recorded requests earn exactly one retry at ratio 0.1.
  for (int i = 0; i < 10; ++i) budget.RecordRequest();
  EXPECT_TRUE(budget.TryRetry());
  EXPECT_FALSE(budget.TryRetry());
  EXPECT_EQ(budget.exhausted(), 2u);
}

TEST(RetryBudgetTest, BalanceIsCappedAtMaxTokens) {
  RetryBudgetOptions options;
  options.initial_tokens = 0;
  options.ratio = 1.0;
  options.max_tokens = 3;
  RetryBudget budget(options);
  for (int i = 0; i < 100; ++i) budget.RecordRequest();
  EXPECT_DOUBLE_EQ(budget.tokens(), 3.0);
  EXPECT_TRUE(budget.TryRetry());
  EXPECT_TRUE(budget.TryRetry());
  EXPECT_TRUE(budget.TryRetry());
  EXPECT_FALSE(budget.TryRetry());
}

TEST(RetryBudgetTest, BoundsRetryAmplificationUnderSystemicFailure) {
  // N requests that all fail and would all like to retry: the total
  // retries granted stay near initial + ratio x N instead of N x
  // (max_attempts - 1).
  RetryBudgetOptions options;
  options.initial_tokens = 10;
  options.ratio = 0.1;
  options.max_tokens = 1000;
  RetryBudget budget(options);
  const int kRequests = 1000;
  int granted = 0;
  for (int i = 0; i < kRequests; ++i) {
    budget.RecordRequest();
    for (int attempt = 0; attempt < 2; ++attempt) {
      if (budget.TryRetry()) ++granted;
    }
  }
  EXPECT_LE(granted, 10 + kRequests / 10 + 1);
  EXPECT_GE(granted, 10);
}

TEST(BackoffTest, GrowsExponentiallyWithoutJitter) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(1);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = milliseconds(50);
  policy.jitter = 0;
  Backoff backoff(policy, /*seed=*/1);
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(1)));
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(2)));
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(4)));
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(8)));
}

TEST(BackoffTest, CapsAtMaxBackoff) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(4);
  policy.backoff_multiplier = 10.0;
  policy.max_backoff = milliseconds(20);
  policy.jitter = 0;
  Backoff backoff(policy, 1);
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(4)));
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(20)));
  EXPECT_EQ(backoff.Next(), nanoseconds(milliseconds(20)));
}

TEST(BackoffTest, JitterStaysInBandAndIsSeedDeterministic) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(10);
  policy.backoff_multiplier = 2.0;
  policy.max_backoff = milliseconds(100);
  policy.jitter = 0.5;

  Backoff a(policy, 99);
  Backoff b(policy, 99);
  Backoff c(policy, 100);
  std::vector<nanoseconds> seq_a, seq_b, seq_c;
  nanoseconds nominal = policy.initial_backoff;
  for (int i = 0; i < 6; ++i) {
    const nanoseconds da = a.Next();
    seq_a.push_back(da);
    seq_b.push_back(b.Next());
    seq_c.push_back(c.Next());
    // In band: [1 - jitter, 1] times the nominal exponential delay.
    EXPECT_GE(da.count(), nominal.count() / 2);
    EXPECT_LE(da.count(), nominal.count());
    nominal = std::min(nanoseconds(nominal * 2), policy.max_backoff);
  }
  EXPECT_EQ(seq_a, seq_b);  // same seed, same schedule
  EXPECT_NE(seq_a, seq_c);  // different seed, different jitter
}

TEST(BackoffTest, DegenerateOptionsAreClamped) {
  RetryPolicy policy;
  policy.initial_backoff = milliseconds(5);
  policy.backoff_multiplier = 0.1;  // clamped to >= 1: never shrinks
  policy.max_backoff = milliseconds(1);  // clamped up to initial
  policy.jitter = 7.0;  // clamped to [0, 1]
  Backoff backoff(policy, 3);
  for (int i = 0; i < 4; ++i) {
    const nanoseconds d = backoff.Next();
    EXPECT_GE(d.count(), 0);
    EXPECT_LE(d, nanoseconds(milliseconds(5)));
  }
}

TEST(DeadlineTest, InfiniteNeverExpires) {
  Deadline d;
  EXPECT_TRUE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_EQ(d.remaining(), Deadline::Clock::duration::max());
  EXPECT_FALSE(Deadline::Infinite().expired());
}

TEST(DeadlineTest, NonPositiveTimeoutIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::After(nanoseconds(0)).expired());
  EXPECT_TRUE(Deadline::After(milliseconds(-5)).expired());
  EXPECT_EQ(Deadline::After(nanoseconds(0)).remaining(),
            Deadline::Clock::duration::zero());
}

TEST(DeadlineTest, FutureDeadlineHasRemainingTime) {
  Deadline d = Deadline::After(std::chrono::hours(1));
  EXPECT_FALSE(d.infinite());
  EXPECT_FALSE(d.expired());
  EXPECT_GT(d.remaining(), std::chrono::minutes(59));
}

}  // namespace
}  // namespace viewrewrite
