#include "common/status.h"

#include <gtest/gtest.h>

namespace viewrewrite {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryFunctionsSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::TypeMismatch("x").code(), StatusCode::kTypeMismatch);
  EXPECT_EQ(Status::Unsupported("x").code(), StatusCode::kUnsupported);
  EXPECT_EQ(Status::ExecutionError("x").code(), StatusCode::kExecutionError);
  EXPECT_EQ(Status::RewriteError("x").code(), StatusCode::kRewriteError);
  EXPECT_EQ(Status::PrivacyError("x").code(), StatusCode::kPrivacyError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::NotFound("missing thing").message(), "missing thing");
}

TEST(StatusTest, ToStringIncludesCodeNameAndMessage) {
  Status s = Status::ParseError("bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
  EXPECT_FALSE(s.ok());
}

TEST(StatusTest, ReturnNotOkMacroPropagates) {
  auto inner = []() -> Status { return Status::NotFound("gone"); };
  auto outer = [&]() -> Status {
    VR_RETURN_NOT_OK(inner());
    return Status::Internal("unreachable");
  };
  Status s = outer();
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
}

TEST(StatusTest, ReturnNotOkMacroPassesThroughOk) {
  auto inner = []() -> Status { return Status::OK(); };
  auto outer = [&]() -> Status {
    VR_RETURN_NOT_OK(inner());
    return Status::Internal("reached");
  };
  EXPECT_EQ(outer().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace viewrewrite
