#include "common/circuit_breaker.h"

#include <gtest/gtest.h>

#include <chrono>

namespace viewrewrite {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

/// Manually-advanced clock: the open -> half-open transition is driven
/// deterministically, no sleeping.
struct FakeClock {
  steady_clock::time_point now = steady_clock::time_point{};
  CircuitBreaker::ClockFn fn() {
    return [this] { return now; };
  }
  void Advance(steady_clock::duration d) { now += d; }
};

CircuitBreakerOptions SmallBreaker() {
  CircuitBreakerOptions options;
  options.failure_threshold = 3;
  options.open_duration = milliseconds(10);
  options.half_open_successes = 1;
  return options;
}

TEST(CircuitBreakerTest, StaysClosedBelowThreshold) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, SuccessResetsConsecutiveFailureCount) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  breaker.RecordFailure();
  breaker.RecordFailure();
  breaker.RecordSuccess();  // streak broken
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, TripsOpenAtThresholdAndRejectsFast) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.rejections(), 2u);
}

TEST(CircuitBreakerTest, HalfOpensAfterCooldownAndAdmitsOneProbe) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.Advance(milliseconds(10));
  EXPECT_TRUE(breaker.Allow());  // the probe
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.Allow());  // probe in flight: everyone else waits
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, FailedProbeReopensForAnotherCooldown) {
  FakeClock clock;
  CircuitBreaker breaker(SmallBreaker(), clock.fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.Advance(milliseconds(10));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordFailure();  // probe failed
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
  EXPECT_FALSE(breaker.Allow());  // cooldown restarted
  clock.Advance(milliseconds(10));
  EXPECT_TRUE(breaker.Allow());
}

TEST(CircuitBreakerTest, MultipleProbeSuccessesRequiredWhenConfigured) {
  CircuitBreakerOptions options = SmallBreaker();
  options.half_open_successes = 2;
  FakeClock clock;
  CircuitBreaker breaker(options, clock.fn());
  for (int i = 0; i < 3; ++i) breaker.RecordFailure();
  clock.Advance(milliseconds(10));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  ASSERT_TRUE(breaker.Allow());  // second probe admitted after the first
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
}

TEST(CircuitBreakerTest, ZeroThresholdDisablesBreaker) {
  CircuitBreakerOptions options;
  options.failure_threshold = 0;
  CircuitBreaker breaker(options);
  for (int i = 0; i < 100; ++i) breaker.RecordFailure();
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
  EXPECT_EQ(breaker.rejections(), 0u);
}

TEST(CircuitBreakerTest, StateNamesForOperatorOutput) {
  EXPECT_STREQ(CircuitBreakerStateName(CircuitBreaker::State::kClosed),
               "closed");
  EXPECT_STREQ(CircuitBreakerStateName(CircuitBreaker::State::kOpen), "open");
  EXPECT_STREQ(CircuitBreakerStateName(CircuitBreaker::State::kHalfOpen),
               "half-open");
}

}  // namespace
}  // namespace viewrewrite
