#include "common/result.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>

namespace viewrewrite {
namespace {

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "nope");
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(ResultTest, AssignOrReturnPropagatesError) {
  auto inner = []() -> Result<int> { return Status::ParseError("bad"); };
  auto outer = [&]() -> Result<std::string> {
    VR_ASSIGN_OR_RETURN(int v, inner());
    return std::to_string(v);
  };
  Result<std::string> r = outer();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(ResultTest, AssignOrReturnUnwrapsValue) {
  auto inner = []() -> Result<int> { return 5; };
  auto outer = [&]() -> Result<std::string> {
    VR_ASSIGN_OR_RETURN(int v, inner());
    return std::to_string(v + 1);
  };
  Result<std::string> r = outer();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, "6");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("hello");
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace viewrewrite
