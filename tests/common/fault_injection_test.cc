#include "common/fault_injection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

namespace viewrewrite {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjection::Instance().DisableAll(); }
};

Status GuardedOperation(const char* point) {
  VR_FAULT_POINT(point);
  return Status::OK();
}

TEST_F(FaultInjectionTest, UnarmedPointsCostNothingAndPass) {
  EXPECT_FALSE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("test.unarmed").ok());
  EXPECT_EQ(FaultInjection::Instance().HitCount("test.unarmed"), 0u);
}

TEST_F(FaultInjectionTest, NthTriggerFiresExactlyOnceOnNthHit) {
  FaultInjection::Instance().FailOnNth("test.nth", 3);
  EXPECT_TRUE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("test.nth").ok());
  EXPECT_TRUE(GuardedOperation("test.nth").ok());
  Status st = GuardedOperation("test.nth");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  // Message names the point so quarantine records are self-describing.
  EXPECT_NE(st.message().find("test.nth"), std::string::npos);
  // Fires at most once.
  EXPECT_TRUE(GuardedOperation("test.nth").ok());
  EXPECT_TRUE(GuardedOperation("test.nth").ok());
  EXPECT_EQ(FaultInjection::Instance().HitCount("test.nth"), 5u);
}

TEST_F(FaultInjectionTest, EveryNTriggerFiresPeriodically) {
  FaultInjection::Instance().FailEveryN("test.every", 2);
  std::vector<bool> fired;
  for (int i = 0; i < 6; ++i) {
    fired.push_back(!GuardedOperation("test.every").ok());
  }
  EXPECT_EQ(fired, (std::vector<bool>{false, true, false, true, false, true}));
}

TEST_F(FaultInjectionTest, ProbabilityTriggerIsSeededAndDeterministic) {
  auto sample = [&](uint64_t seed) {
    FaultInjection::Instance().FailWithProbability("test.prob", 0.5, seed);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!GuardedOperation("test.prob").ok());
    }
    FaultInjection::Instance().Disable("test.prob");
    return fired;
  };
  std::vector<bool> a = sample(7);
  std::vector<bool> b = sample(7);
  EXPECT_EQ(a, b);
  // At p=0.5 over 64 hits both outcomes occur with overwhelming
  // probability; this also guards against always/never-firing bugs.
  EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
  std::vector<bool> c = sample(8);
  EXPECT_NE(a, c);
}

TEST_F(FaultInjectionTest, CustomStatusIsReturnedVerbatim) {
  FaultInjection::Instance().FailOnNth(
      "test.custom", 1, Status::PrivacyError("injected privacy failure"));
  Status st = GuardedOperation("test.custom");
  EXPECT_EQ(st.code(), StatusCode::kPrivacyError);
  EXPECT_EQ(st.message(), "injected privacy failure");
}

TEST_F(FaultInjectionTest, ArmingOnePointDoesNotAffectOthers) {
  FaultInjection::Instance().FailOnNth("test.a", 1);
  EXPECT_TRUE(GuardedOperation("test.b").ok());
  EXPECT_EQ(FaultInjection::Instance().HitCount("test.b"), 0u);
  EXPECT_FALSE(GuardedOperation("test.a").ok());
}

TEST_F(FaultInjectionTest, DisableAllDisarmsFastPath) {
  FaultInjection::Instance().FailOnNth("test.a", 1);
  FaultInjection::Instance().FailEveryN("test.b", 1);
  EXPECT_TRUE(FaultInjection::Armed());
  FaultInjection::Instance().DisableAll();
  EXPECT_FALSE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("test.a").ok());
  EXPECT_TRUE(GuardedOperation("test.b").ok());
}

TEST_F(FaultInjectionTest, ReArmingResetsHitCount) {
  FaultInjection::Instance().FailOnNth("test.rearm", 2);
  EXPECT_TRUE(GuardedOperation("test.rearm").ok());
  EXPECT_FALSE(GuardedOperation("test.rearm").ok());
  FaultInjection::Instance().FailOnNth("test.rearm", 2);
  EXPECT_EQ(FaultInjection::Instance().HitCount("test.rearm"), 0u);
  EXPECT_TRUE(GuardedOperation("test.rearm").ok());
  EXPECT_FALSE(GuardedOperation("test.rearm").ok());
}

TEST_F(FaultInjectionTest, ScopedFaultDisarmsOnDestruction) {
  {
    ScopedFault fault = ScopedFault::EveryN("test.scoped", 1);
    EXPECT_FALSE(GuardedOperation("test.scoped").ok());
  }
  EXPECT_FALSE(FaultInjection::Armed());
  EXPECT_TRUE(GuardedOperation("test.scoped").ok());
}

}  // namespace
}  // namespace viewrewrite
