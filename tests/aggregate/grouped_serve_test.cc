#include <gtest/gtest.h>
#include <unistd.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "aggregate/grouped_result.h"
#include "aggregate/suppression.h"
#include "engine/viewrewrite_engine.h"
#include "serve/query_server.h"
#include "serve/synopsis_store.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

// The acceptance path for the aggregate serving subsystem: a grouped AVG
// with a HAVING clause, registered only through its (sum, count)
// companion measures, published once, round-tripped through a .vrsy
// bundle, and served through QueryServer::Submit — cached, coalescible,
// and suppression-filtered.
constexpr char kGroupedCount[] =
    "SELECT o_status, COUNT(*) FROM orders o GROUP BY o_status";
constexpr char kGroupedAvgHaving[] =
    "SELECT o_status, AVG(o_totalprice) FROM orders o GROUP BY o_status "
    "HAVING COUNT(*) >= 2";
constexpr char kScalar[] =
    "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64";
constexpr char kEmptySum[] =
    "SELECT SUM(o_totalprice) FROM orders o WHERE o.o_totalprice >= 100000";

class GroupedServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing_support::MakeTestDatabase(13, 40);
    workload_ = {kGroupedCount, kGroupedAvgHaving, kScalar, kEmptySum};
    EngineOptions options;
    options.seed = 42;
    engine_ = std::make_unique<ViewRewriteEngine>(
        *db_, PrivacyPolicy{"customer"}, options);
    ASSERT_TRUE(engine_->Prepare(workload_).ok());
    for (size_t i = 0; i < engine_->report().query_status.size(); ++i) {
      ASSERT_TRUE(engine_->report().query_status[i].ok())
          << workload_[i] << ": " << engine_->report().query_status[i];
    }

    bundle_path_ = ::testing::TempDir() + "grouped_serve." +
                   std::to_string(::getpid()) + ".vrsy";
    auto snapshot =
        SynopsisStore::FromManager(engine_->views(), db_->schema());
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    ASSERT_TRUE(snapshot->Save(bundle_path_).ok());
    auto loaded = SynopsisStore::Load(bundle_path_, db_->schema());
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    store_ = std::make_shared<const SynopsisStore>(std::move(*loaded));
  }

  /// Engine-side expectation with the serve-side policy applied.
  aggregate::GroupedData Expected(size_t i, double min_group_count) {
    Result<aggregate::GroupedData> rows = engine_->GroupedAnswer(i);
    EXPECT_TRUE(rows.ok()) << rows.status();
    aggregate::GroupedData data =
        rows.ok() ? std::move(*rows) : aggregate::GroupedData{};
    aggregate::ApplySuppression(
        aggregate::SuppressionPolicy{min_group_count}, &data);
    return data;
  }

  static void ExpectSameRows(const aggregate::GroupedData& got,
                             const aggregate::GroupedData& want) {
    ASSERT_EQ(got.columns, want.columns);
    ASSERT_EQ(got.rows.size(), want.rows.size());
    for (size_t r = 0; r < got.rows.size(); ++r) {
      EXPECT_EQ(got.rows[r].suppressed, want.rows[r].suppressed);
      ASSERT_EQ(got.rows[r].values.size(), want.rows[r].values.size());
      for (size_t c = 0; c < got.rows[r].values.size(); ++c) {
        const Value& a = got.rows[r].values[c];
        const Value& b = want.rows[r].values[c];
        ASSERT_EQ(a.is_null(), b.is_null());
        if (a.is_null()) continue;
        if (a.is_numeric()) {
          EXPECT_DOUBLE_EQ(a.ToDouble(), b.ToDouble());
        } else {
          EXPECT_EQ(a.AsString(), b.AsString());
        }
      }
    }
  }

  std::unique_ptr<Database> db_;
  std::vector<std::string> workload_;
  std::unique_ptr<ViewRewriteEngine> engine_;
  std::string bundle_path_;
  std::shared_ptr<const SynopsisStore> store_;
};

TEST_F(GroupedServeTest, AvgRegistersOnlySumAndCountCompanions) {
  // AVG itself is never materialized: the planner resolves it to the
  // (sum, count) companions at register time, so serving AVG later is
  // pure post-processing.
  bool saw_sum = false;
  for (const auto& view : engine_->views().views()) {
    for (const ViewMeasure& m : view->measures()) {
      EXPECT_NE(m.kind, ViewMeasure::Kind::kAvg) << m.key;
      if (m.kind == ViewMeasure::Kind::kSum) saw_sum = true;
    }
  }
  EXPECT_TRUE(saw_sum);
}

TEST_F(GroupedServeTest, SubmitServesGroupedRowsMatchingTheEngine) {
  ServeOptions options;
  options.num_threads = 4;
  QueryServer server(store_, db_->schema(), options);

  for (size_t i = 0; i < 2; ++i) {
    Result<ServedAnswer> got = server.Submit(workload_[i]).get();
    ASSERT_TRUE(got.ok()) << got.status();
    ASSERT_NE(got->rows, nullptr) << workload_[i];
    EXPECT_FALSE(got->stale);
    // The scalar field carries the row count for grouped answers.
    EXPECT_DOUBLE_EQ(got->value,
                     static_cast<double>(got->rows->rows.size()));
    ExpectSameRows(*got->rows, Expected(i, /*min_group_count=*/0));
  }
  // Scalar queries keep a null row set through the same pipeline.
  Result<ServedAnswer> scalar = server.Submit(kScalar).get();
  ASSERT_TRUE(scalar.ok()) << scalar.status();
  EXPECT_EQ(scalar->rows, nullptr);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.grouped_queries, 2u);
  EXPECT_EQ(stats.completed, 3u);
}

TEST_F(GroupedServeTest, HavingFiltersGroupsPostNoise) {
  // The HAVING COUNT(*) >= 2 variant can only drop rows relative to the
  // unfiltered grouped count — and both must agree on surviving keys.
  ServeOptions options;
  QueryServer server(store_, db_->schema(), options);
  Result<ServedAnswer> all = server.Submit(kGroupedCount).get();
  Result<ServedAnswer> having = server.Submit(kGroupedAvgHaving).get();
  ASSERT_TRUE(all.ok() && having.ok());
  ASSERT_NE(all->rows, nullptr);
  ASSERT_NE(having->rows, nullptr);
  EXPECT_LE(having->rows->rows.size(), all->rows->rows.size());
  ExpectSameRows(*having->rows, Expected(1, /*min_group_count=*/0));
}

TEST_F(GroupedServeTest, CacheHandsOutTheSameRowSetObject) {
  ServeOptions options;
  options.num_threads = 2;
  QueryServer server(store_, db_->schema(), options);
  Result<ServedAnswer> first = server.Submit(kGroupedAvgHaving).get();
  ASSERT_TRUE(first.ok()) << first.status();
  Result<ServedAnswer> second = server.Submit(kGroupedAvgHaving).get();
  ASSERT_TRUE(second.ok()) << second.status();
  // The second submission is a cache hit and shares the identical
  // immutable row set — not a recomputation, not a copy.
  ASSERT_NE(first->rows, nullptr);
  EXPECT_EQ(first->rows.get(), second->rows.get());
  ServeStats stats = server.stats();
  EXPECT_GE(stats.cache_hits, 1u);
  EXPECT_EQ(stats.grouped_queries, 1u);  // computed once
  EXPECT_GT(stats.cache_bytes, 0u);      // row sets are byte-accounted
}

TEST_F(GroupedServeTest, SuppressionFiltersSmallNoisyGroups) {
  // An impossible threshold suppresses every group: rows survive with
  // keys, aggregates are withheld, and the stats record the toll.
  ServeOptions options;
  options.min_group_count = 1e9;
  QueryServer server(store_, db_->schema(), options);
  Result<ServedAnswer> got = server.Submit(kGroupedCount).get();
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_NE(got->rows, nullptr);
  ASSERT_FALSE(got->rows->rows.empty());
  for (const aggregate::GroupedRow& row : got->rows->rows) {
    EXPECT_TRUE(row.suppressed);
    EXPECT_FALSE(row.values[0].is_null());  // group key kept
    EXPECT_TRUE(row.values[1].is_null());   // aggregate withheld
  }
  ExpectSameRows(*got->rows, Expected(0, options.min_group_count));
  EXPECT_EQ(server.stats().suppressed_groups, got->rows->rows.size());
}

TEST_F(GroupedServeTest, ModerateThresholdMatchesBaselinePolicy) {
  // Group sizes hover around 13 rows here, so a threshold of 12 lands
  // inside the noise band: whatever the serve side suppresses, the
  // baseline with the same policy must suppress identically.
  ServeOptions options;
  options.min_group_count = 12.0;
  QueryServer server(store_, db_->schema(), options);
  Result<ServedAnswer> got = server.Submit(kGroupedCount).get();
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_NE(got->rows, nullptr);
  ExpectSameRows(*got->rows, Expected(0, options.min_group_count));
}

TEST_F(GroupedServeTest, EmptySumAnswersZeroOnExactAndNoisyPaths) {
  // SUM over an empty selection: SQL says NULL, the scalar contract says
  // 0, and the noisy path must agree with the exact path instead of
  // erroring. Regression for the executor.h-vs-executor.cc empty-input
  // mismatch.
  Result<double> exact = engine_->TrueAnswer(3);
  ASSERT_TRUE(exact.ok()) << exact.status();
  EXPECT_DOUBLE_EQ(*exact, 0.0);
  Result<double> noisy = engine_->NoisyAnswer(3);
  ASSERT_TRUE(noisy.ok()) << noisy.status();
  // Served through the full pipeline too: no crash, no NotFound.
  ServeOptions options;
  QueryServer server(store_, db_->schema(), options);
  Result<ServedAnswer> got = server.Submit(kEmptySum).get();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->rows, nullptr);
  EXPECT_DOUBLE_EQ(got->value, *noisy);
}

TEST_F(GroupedServeTest, BatchSubmitCarriesRowSets) {
  ServeOptions options;
  QueryServer server(store_, db_->schema(), options);
  std::vector<std::string> batch = {kGroupedCount, kGroupedCount, kScalar};
  auto futures = server.SubmitBatch(batch);
  ASSERT_EQ(futures.size(), batch.size());
  Result<ServedAnswer> a = futures[0].get();
  Result<ServedAnswer> b = futures[1].get();
  Result<ServedAnswer> c = futures[2].get();
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  ASSERT_NE(a->rows, nullptr);
  // Batch dedup: the duplicate element shares the identical row set.
  EXPECT_EQ(a->rows.get(), b->rows.get());
  EXPECT_EQ(c->rows, nullptr);
}

}  // namespace
}  // namespace viewrewrite
