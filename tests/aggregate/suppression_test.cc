#include "aggregate/suppression.h"

#include <gtest/gtest.h>

#include "aggregate/grouped_result.h"
#include "sql/value.h"

namespace viewrewrite {
namespace aggregate {
namespace {

GroupedData MakeData() {
  GroupedData data;
  data.columns = {"o_status", "cnt", "avg_price"};
  data.is_aggregate = {false, true, true};
  auto add = [&](const char* key, double count, double avg) {
    GroupedRow row;
    row.values.push_back(Value::String(key));
    row.values.push_back(Value::Double(count));
    row.values.push_back(Value::Double(avg));
    row.noisy_count = count;
    data.rows.push_back(std::move(row));
  };
  add("f", 14.0, 31.5);
  add("o", 11.2, 28.0);
  add("p", 2.7, 90.0);
  return data;
}

TEST(SuppressionTest, DisabledPolicyReleasesEverything) {
  GroupedData data = MakeData();
  EXPECT_EQ(ApplySuppression(SuppressionPolicy{0.0}, &data), 0u);
  EXPECT_EQ(ApplySuppression(SuppressionPolicy{-5.0}, &data), 0u);
  for (const GroupedRow& row : data.rows) {
    EXPECT_FALSE(row.suppressed);
    EXPECT_FALSE(row.values[1].is_null());
  }
}

TEST(SuppressionTest, LowNoisyCountsLoseAggregatesButKeepKeys) {
  GroupedData data = MakeData();
  EXPECT_EQ(ApplySuppression(SuppressionPolicy{12.0}, &data), 2u);
  // 'f' (14.0) survives intact.
  EXPECT_FALSE(data.rows[0].suppressed);
  EXPECT_DOUBLE_EQ(data.rows[0].values[2].ToDouble(), 31.5);
  // 'o' (11.2) and 'p' (2.7) are below threshold: aggregates withheld,
  // group keys (public domain) kept, row still present with the flag.
  for (size_t i : {size_t{1}, size_t{2}}) {
    EXPECT_TRUE(data.rows[i].suppressed);
    EXPECT_FALSE(data.rows[i].values[0].is_null());  // key survives
    EXPECT_TRUE(data.rows[i].values[1].is_null());
    EXPECT_TRUE(data.rows[i].values[2].is_null());
  }
  EXPECT_EQ(data.NumRows(), 3u);  // no row deleted, only masked
}

TEST(SuppressionTest, IdempotentAndDeterministic) {
  GroupedData once = MakeData();
  GroupedData twice = MakeData();
  ApplySuppression(SuppressionPolicy{12.0}, &once);
  ApplySuppression(SuppressionPolicy{12.0}, &twice);
  // Re-applying the same policy changes nothing and reports the same
  // total: the serve path and the chaos baseline can each apply it.
  EXPECT_EQ(ApplySuppression(SuppressionPolicy{12.0}, &twice), 2u);
  ASSERT_EQ(once.rows.size(), twice.rows.size());
  for (size_t i = 0; i < once.rows.size(); ++i) {
    EXPECT_EQ(once.rows[i].suppressed, twice.rows[i].suppressed);
    for (size_t j = 0; j < once.rows[i].values.size(); ++j) {
      EXPECT_EQ(once.rows[i].values[j].is_null(),
                twice.rows[i].values[j].is_null());
    }
  }
}

TEST(SuppressionTest, ThresholdComparesNoisyCountNotStoredValue) {
  GroupedData data = MakeData();
  // Make the stored count column disagree with noisy_count: the rule
  // must read noisy_count (the designated suppression input).
  data.rows[0].noisy_count = 1.0;
  EXPECT_EQ(ApplySuppression(SuppressionPolicy{12.0}, &data), 3u);
  EXPECT_TRUE(data.rows[0].suppressed);
}

TEST(SuppressionTest, ByteSizeAndResultSetSurviveSuppression) {
  GroupedData data = MakeData();
  ApplySuppression(SuppressionPolicy{12.0}, &data);
  EXPECT_GT(data.ByteSize(), 0u);
  ResultSet rs = data.ToResultSet();
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.columns.size(), 3u);
  // Suppressed rows flatten with their NULLed aggregates.
  EXPECT_TRUE(rs.rows[2][1].is_null());
  EXPECT_FALSE(rs.rows[2][0].is_null());
}

}  // namespace
}  // namespace aggregate
}  // namespace viewrewrite
