#include "aggregate/aggregate_planner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "sql/ast.h"
#include "sql/printer.h"

namespace viewrewrite {
namespace aggregate {
namespace {

ExprPtr Col(const std::string& name) {
  return std::make_unique<ColumnRefExpr>("", name);
}

ExprPtr Lit(double v) {
  return std::make_unique<LiteralExpr>(Value::Double(v));
}

ExprPtr IntLit(int64_t v) {
  return std::make_unique<LiteralExpr>(Value::Int(v));
}

ExprPtr NullLit() {
  return std::make_unique<LiteralExpr>(Value::Null());
}

ExprPtr Bin(BinaryOp op, ExprPtr l, ExprPtr r) {
  return std::make_unique<BinaryExpr>(op, std::move(l), std::move(r));
}

std::unique_ptr<FuncCallExpr> Agg(const std::string& name, ExprPtr arg) {
  std::vector<ExprPtr> args;
  if (arg) args.push_back(std::move(arg));
  return std::make_unique<FuncCallExpr>(name, std::move(args));
}

std::unique_ptr<FuncCallExpr> CountStar() {
  std::vector<ExprPtr> args;
  args.push_back(std::make_unique<StarExpr>());
  return std::make_unique<FuncCallExpr>("count", std::move(args));
}

TEST(PlanAggregateTest, CountStarReadsOnlyTheCountMeasure) {
  auto plan = PlanAggregate(*CountStar());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->derivation, Derivation::kCount);
  EXPECT_TRUE(plan->needs_count);
  EXPECT_TRUE(plan->sum_key.empty());
  EXPECT_TRUE(plan->sumsq_key.empty());
}

TEST(PlanAggregateTest, SumReadsItsSumMeasure) {
  auto plan = PlanAggregate(*Agg("sum", Col("o_totalprice")));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->derivation, Derivation::kSum);
  EXPECT_EQ(plan->sum_key, "sum:o_totalprice");
  EXPECT_FALSE(plan->needs_count);
}

TEST(PlanAggregateTest, AvgDerivesFromSumAndCount) {
  // The headline derivation: AVG is never materialized, only its sum and
  // count companions are, so registering AVG costs no extra budget.
  auto plan = PlanAggregate(*Agg("avg", Col("o_totalprice")));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->derivation, Derivation::kAvg);
  EXPECT_EQ(plan->sum_key, "sum:o_totalprice");
  EXPECT_TRUE(plan->needs_count);
  EXPECT_TRUE(plan->sumsq_key.empty());
}

TEST(PlanAggregateTest, VarianceNeedsSumSumsqAndCount) {
  auto plan = PlanAggregate(*Agg("variance", Col("x")));
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->derivation, Derivation::kVariance);
  EXPECT_EQ(plan->sum_key, "sum:x");
  EXPECT_FALSE(plan->sumsq_key.empty());
  EXPECT_TRUE(plan->needs_count);
  ASSERT_NE(plan->square, nullptr);
  // The companion is the sum of squares: key must match the planner's
  // own canonicalization of arg*arg, so register and answer time agree.
  EXPECT_EQ(plan->sumsq_key, SumMeasureKey(*plan->square));
}

TEST(PlanAggregateTest, StddevSharesVarianceCompanions) {
  auto var = PlanAggregate(*Agg("variance", Col("x")));
  auto sd = PlanAggregate(*Agg("stddev", Col("x")));
  ASSERT_TRUE(var.ok() && sd.ok());
  EXPECT_EQ(sd->derivation, Derivation::kStddev);
  EXPECT_EQ(sd->sum_key, var->sum_key);
  EXPECT_EQ(sd->sumsq_key, var->sumsq_key);
}

TEST(PlanAggregateTest, MinMaxAreExtremumScans) {
  auto lo = PlanAggregate(*Agg("min", Col("o_totalprice")));
  auto hi = PlanAggregate(*Agg("max", Col("o_totalprice")));
  ASSERT_TRUE(lo.ok() && hi.ok());
  EXPECT_EQ(lo->derivation, Derivation::kExtremum);
  EXPECT_TRUE(lo->is_extremum);
  EXPECT_TRUE(hi->is_extremum);
}

TEST(PlanAggregateTest, DistinctIsUnsupported) {
  FuncCallExpr agg("count", [] {
    std::vector<ExprPtr> args;
    args.push_back(Col("o_custkey"));
    return args;
  }(), /*dist=*/true);
  auto plan = PlanAggregate(agg);
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsupported);
}

TEST(PlanAggregateTest, ExtremumOverExpressionIsUnsupported) {
  auto plan = PlanAggregate(
      *Agg("min", Bin(BinaryOp::kMul, Col("x"), Lit(2))));
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kUnsupported);
}

TEST(EvaluateDerivedTest, AvgDividesAndClampsTinyCounts) {
  EXPECT_DOUBLE_EQ(EvaluateDerived(Derivation::kAvg, 4.0, 10.0, 0.0), 2.5);
  // Noisy counts can land at or below zero; the ratio clamps the
  // denominator to 1 instead of exploding.
  EXPECT_DOUBLE_EQ(EvaluateDerived(Derivation::kAvg, -3.0, 10.0, 0.0), 10.0);
}

TEST(EvaluateDerivedTest, VarianceClampsNegativeToZero) {
  // E[x^2] - E[x]^2 with noisy readings can go negative.
  // count=10, sum=100, sumsq=999: E[x^2]=99.9 < E[x]^2=100 -> clamp to 0.
  const double v = EvaluateDerived(Derivation::kVariance, 10.0, 100.0, 999.0);
  EXPECT_DOUBLE_EQ(v, 0.0);
}

TEST(EvaluateDerivedTest, VarianceAndStddevAgree) {
  // 4 values {1,2,3,4}: sum=10, sumsq=30, count=4 -> population var 1.25.
  const double var = EvaluateDerived(Derivation::kVariance, 4.0, 10.0, 30.0);
  const double sd = EvaluateDerived(Derivation::kStddev, 4.0, 10.0, 30.0);
  EXPECT_DOUBLE_EQ(var, 1.25);
  EXPECT_DOUBLE_EQ(sd, std::sqrt(1.25));
  // Negative noisy variance must square-root to 0, not NaN.
  const double sd0 = EvaluateDerived(Derivation::kStddev, 10.0, 100.0, 0.0);
  EXPECT_DOUBLE_EQ(sd0, 0.0);
}

class EvalExprTest : public ::testing::Test {
 protected:
  EvalExprTest() {
    aggregates_[ToSql(*CountStar())] = 7.0;
    aggregates_[ToSql(*Agg("avg", Col("o_totalprice")))] = 2.5;
    columns_["o_status"] = Value::String("f");
    columns_["o.o_status"] = Value::String("f");
    ctx_.aggregates = &aggregates_;
    ctx_.columns = &columns_;
  }

  std::map<std::string, double> aggregates_;
  std::map<std::string, Value> columns_;
  EvalContext ctx_;
};

TEST_F(EvalExprTest, AggregateCallsResolveByCanonicalSql) {
  auto v = EvalExpr(*CountStar(), ctx_);
  ASSERT_TRUE(v.ok()) << v.status();
  EXPECT_DOUBLE_EQ(v->ToDouble(), 7.0);
  auto missing = EvalExpr(*Agg("sum", Col("no_such")), ctx_);
  EXPECT_FALSE(missing.ok());
}

TEST_F(EvalExprTest, GroupColumnsResolveQualifiedOrBare) {
  auto bare = EvalExpr(*Col("o_status"), ctx_);
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare->AsString(), "f");
  ColumnRefExpr qualified("o", "o_status");
  auto q = EvalExpr(qualified, ctx_);
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->AsString(), "f");
}

TEST_F(EvalExprTest, ArithmeticAndDivisionByZero) {
  auto sum = EvalExpr(*Bin(BinaryOp::kAdd, CountStar(), Lit(3)), ctx_);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->ToDouble(), 10.0);
  auto div0 = EvalExpr(*Bin(BinaryOp::kDiv, Lit(1), Lit(0)), ctx_);
  ASSERT_FALSE(div0.ok());
  EXPECT_EQ(div0.status().code(), StatusCode::kExecutionError);
}

TEST_F(EvalExprTest, ComparisonsYieldIntBooleans) {
  auto ge = EvalExpr(*Bin(BinaryOp::kGe, CountStar(), Lit(5)), ctx_);
  ASSERT_TRUE(ge.ok());
  EXPECT_EQ(ge->AsInt(), 1);
  auto lt = EvalExpr(*Bin(BinaryOp::kLt, CountStar(), Lit(5)), ctx_);
  ASSERT_TRUE(lt.ok());
  EXPECT_EQ(lt->AsInt(), 0);
}

TEST_F(EvalExprTest, ThreeValuedLogic) {
  // NULL comparisons propagate NULL; AND/OR follow SQL tri-logic.
  auto null_cmp = EvalExpr(*Bin(BinaryOp::kGt, NullLit(), Lit(1)), ctx_);
  ASSERT_TRUE(null_cmp.ok());
  EXPECT_TRUE(null_cmp->is_null());
  auto null_or_true =
      EvalExpr(*Bin(BinaryOp::kOr, NullLit(), IntLit(1)), ctx_);
  ASSERT_TRUE(null_or_true.ok());
  EXPECT_EQ(null_or_true->AsInt(), 1);
  auto null_and_false =
      EvalExpr(*Bin(BinaryOp::kAnd, NullLit(), IntLit(0)), ctx_);
  ASSERT_TRUE(null_and_false.ok());
  EXPECT_EQ(null_and_false->AsInt(), 0);
  auto null_and_true =
      EvalExpr(*Bin(BinaryOp::kAnd, NullLit(), IntLit(1)), ctx_);
  ASSERT_TRUE(null_and_true.ok());
  EXPECT_TRUE(null_and_true->is_null());
  auto not_null = EvalExpr(
      *std::make_unique<UnaryExpr>(UnaryOp::kNot, NullLit()), ctx_);
  ASSERT_TRUE(not_null.ok());
  EXPECT_TRUE(not_null->is_null());
}

TEST_F(EvalExprTest, HavingDropsFalseAndNullKeepsTrue) {
  auto keep = EvaluateHaving(*Bin(BinaryOp::kGe, CountStar(), Lit(5)), ctx_);
  ASSERT_TRUE(keep.ok());
  EXPECT_TRUE(*keep);
  auto drop = EvaluateHaving(*Bin(BinaryOp::kLt, CountStar(), Lit(5)), ctx_);
  ASSERT_TRUE(drop.ok());
  EXPECT_FALSE(*drop);
  // HAVING NULL drops the group (SQL semantics), it is not an error.
  auto null_pred =
      EvaluateHaving(*Bin(BinaryOp::kGt, NullLit(), Lit(1)), ctx_);
  ASSERT_TRUE(null_pred.ok());
  EXPECT_FALSE(*null_pred);
}

TEST_F(EvalExprTest, HavingOverDerivedMeasure) {
  // HAVING AVG(o_totalprice) > 2 reads the derived aggregate by its
  // canonical SQL, exactly how the synopsis publishes it.
  auto keep = EvaluateHaving(
      *Bin(BinaryOp::kGt, Agg("avg", Col("o_totalprice")), Lit(2)), ctx_);
  ASSERT_TRUE(keep.ok());
  EXPECT_TRUE(*keep);
}

}  // namespace
}  // namespace aggregate
}  // namespace viewrewrite
