#include "storage/table.h"

#include <gtest/gtest.h>

#include "testing/test_db.h"

namespace viewrewrite {
namespace {

TEST(TableTest, InsertChecksArity) {
  Table t(TableSchema("t",
                      {{"a", DataType::kInt, ColumnDomain::None()},
                       {"b", DataType::kString, ColumnDomain::None()}},
                      "a"));
  EXPECT_TRUE(t.Insert({Value::Int(1), Value::String("x")}).ok());
  EXPECT_EQ(t.Insert({Value::Int(1)}).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, InsertChecksTypes) {
  Table t(TableSchema("t", {{"a", DataType::kInt, ColumnDomain::None()}},
                      "a"));
  EXPECT_TRUE(t.Insert({Value::Int(1)}).ok());
  EXPECT_EQ(t.Insert({Value::String("x")}).code(), StatusCode::kTypeMismatch);
  // NULLs are allowed in any column.
  EXPECT_TRUE(t.Insert({Value::Null()}).ok());
}

TEST(TableTest, IntWidensToDoubleColumn) {
  Table t(TableSchema("t", {{"a", DataType::kDouble, ColumnDomain::None()}},
                      "a"));
  ASSERT_TRUE(t.Insert({Value::Int(3)}).ok());
  EXPECT_TRUE(t.rows()[0][0].is_double());
  EXPECT_EQ(t.rows()[0][0].AsDoubleExact(), 3.0);
}

TEST(DatabaseTest, TablesMaterializedFromSchema) {
  auto db = testing_support::MakeTestDatabase(1);
  EXPECT_NE(db->FindTable("customer"), nullptr);
  EXPECT_NE(db->FindTable("orders"), nullptr);
  EXPECT_NE(db->FindTable("lineitem"), nullptr);
  EXPECT_EQ(db->FindTable("nope"), nullptr);
  EXPECT_FALSE(db->GetTable("nope").ok());
}

TEST(DatabaseTest, GeneratedDataRespectsSizes) {
  auto db = testing_support::MakeTestDatabase(7, 50);
  EXPECT_EQ(db->FindTable("customer")->NumRows(), 50u);
  EXPECT_GT(db->FindTable("orders")->NumRows(), 0u);
  EXPECT_EQ(db->TotalRows(), db->FindTable("customer")->NumRows() +
                                 db->FindTable("orders")->NumRows() +
                                 db->FindTable("lineitem")->NumRows());
}

TEST(DatabaseTest, GenerationIsDeterministic) {
  auto a = testing_support::MakeTestDatabase(11, 20);
  auto b = testing_support::MakeTestDatabase(11, 20);
  EXPECT_EQ(a->TotalRows(), b->TotalRows());
  EXPECT_EQ(a->FindTable("orders")->rows(), b->FindTable("orders")->rows());
}

}  // namespace
}  // namespace viewrewrite
