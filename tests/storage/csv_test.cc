#include "storage/csv.h"

#include <gtest/gtest.h>

#include "testing/test_db.h"

namespace viewrewrite {
namespace {

TableSchema SmallSchema() {
  return TableSchema("t",
                     {{"id", DataType::kInt, ColumnDomain::None()},
                      {"name", DataType::kString, ColumnDomain::None()},
                      {"score", DataType::kDouble, ColumnDomain::None()}},
                     "id");
}

TEST(CsvTest, LoadBasicRecords) {
  Table t(SmallSchema());
  Status st = LoadCsv(&t, "id,name,score\n1,alice,2.5\n2,bob,3\n", true);
  ASSERT_TRUE(st.ok()) << st;
  ASSERT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.rows()[0][0], Value::Int(1));
  EXPECT_EQ(t.rows()[0][1], Value::String("alice"));
  EXPECT_EQ(t.rows()[0][2], Value::Double(2.5));
  EXPECT_EQ(t.rows()[1][2], Value::Double(3.0));
}

TEST(CsvTest, NoHeaderMode) {
  Table t(SmallSchema());
  ASSERT_TRUE(LoadCsv(&t, "1,a,1.0\n", false).ok());
  EXPECT_EQ(t.NumRows(), 1u);
}

TEST(CsvTest, QuotedFieldsWithCommasAndQuotes) {
  Table t(SmallSchema());
  Status st = LoadCsv(&t, "1,\"last, first\",0.5\n2,\"say \"\"hi\"\"\",1\n",
                      false);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(t.rows()[0][1], Value::String("last, first"));
  EXPECT_EQ(t.rows()[1][1], Value::String("say \"hi\""));
}

TEST(CsvTest, EmptyUnquotedFieldIsNull) {
  Table t(SmallSchema());
  ASSERT_TRUE(LoadCsv(&t, "1,,\n", false).ok());
  EXPECT_TRUE(t.rows()[0][1].is_null());
  EXPECT_TRUE(t.rows()[0][2].is_null());
}

TEST(CsvTest, QuotedEmptyStringIsNotNull) {
  Table t(SmallSchema());
  ASSERT_TRUE(LoadCsv(&t, "1,\"\",2\n", false).ok());
  EXPECT_EQ(t.rows()[0][1], Value::String(""));
}

TEST(CsvTest, TypeErrorsSurface) {
  Table t(SmallSchema());
  Status st = LoadCsv(&t, "abc,x,1\n", false);
  EXPECT_EQ(st.code(), StatusCode::kTypeMismatch);
}

TEST(CsvTest, ArityErrorsSurface) {
  Table t(SmallSchema());
  Status st = LoadCsv(&t, "1,x\n", false);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(CsvTest, DanglingQuoteErrors) {
  Table t(SmallSchema());
  Status st = LoadCsv(&t, "1,\"oops,2\n", false);
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST(CsvTest, CrLfTolerated) {
  Table t(SmallSchema());
  ASSERT_TRUE(LoadCsv(&t, "1,a,2\r\n2,b,3\r\n", false).ok());
  EXPECT_EQ(t.NumRows(), 2u);
  EXPECT_EQ(t.rows()[0][1], Value::String("a"));
}

TEST(CsvTest, RoundTripThroughText) {
  Table t(SmallSchema());
  ASSERT_TRUE(t.Insert({Value::Int(1), Value::String("a,b"),
                        Value::Double(1.5)}).ok());
  ASSERT_TRUE(
      t.Insert({Value::Int(2), Value::Null(), Value::Null()}).ok());
  std::string csv = TableToCsv(t);
  Table back(SmallSchema());
  ASSERT_TRUE(LoadCsv(&back, csv, true).ok());
  ASSERT_EQ(back.NumRows(), 2u);
  EXPECT_EQ(back.rows()[0][1], Value::String("a,b"));
  EXPECT_TRUE(back.rows()[1][1].is_null());
}

TEST(CsvTest, FileRoundTrip) {
  Table t(SmallSchema());
  ASSERT_TRUE(
      t.Insert({Value::Int(7), Value::String("x"), Value::Double(0.25)})
          .ok());
  std::string path = ::testing::TempDir() + "/vr_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(t, path).ok());
  Table back(SmallSchema());
  ASSERT_TRUE(LoadCsvFile(&back, path, true).ok());
  ASSERT_EQ(back.NumRows(), 1u);
  EXPECT_EQ(back.rows()[0][0], Value::Int(7));
}

TEST(CsvTest, MissingFileErrors) {
  Table t(SmallSchema());
  EXPECT_EQ(LoadCsvFile(&t, "/nonexistent/nope.csv", true).code(),
            StatusCode::kNotFound);
}

TEST(CsvTest, ResultSetSerialization) {
  ResultSet rs;
  rs.columns = {"a", "cnt"};
  rs.rows.push_back({Value::String("x"), Value::Int(3)});
  rs.rows.push_back({Value::Null(), Value::Int(1)});
  EXPECT_EQ(ResultSetToCsv(rs), "a,cnt\nx,3\n,1\n");
}

}  // namespace
}  // namespace viewrewrite
