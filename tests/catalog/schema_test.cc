#include "catalog/schema.h"

#include <gtest/gtest.h>

#include "testing/test_db.h"

namespace viewrewrite {
namespace {

TEST(ColumnDomainTest, CategoricalCells) {
  auto d = ColumnDomain::Categorical({Value::Int(10), Value::Int(20)});
  EXPECT_EQ(d.CellCount(), 2);
  EXPECT_EQ(d.CellIndex(Value::Int(10)), 0);
  EXPECT_EQ(d.CellIndex(Value::Int(20)), 1);
  EXPECT_EQ(d.CellIndex(Value::Int(30)), -1);
}

TEST(ColumnDomainTest, IntBucketsIndexAndBounds) {
  auto d = ColumnDomain::IntBuckets(0, 63, 16);  // width 4
  EXPECT_EQ(d.CellCount(), 16);
  EXPECT_EQ(d.CellIndex(Value::Int(0)), 0);
  EXPECT_EQ(d.CellIndex(Value::Int(3)), 0);
  EXPECT_EQ(d.CellIndex(Value::Int(4)), 1);
  EXPECT_EQ(d.CellIndex(Value::Int(63)), 15);
  auto [lo, hi] = d.BucketBounds(1);
  EXPECT_EQ(lo, 4);
  EXPECT_EQ(hi, 7);
  auto [llo, lhi] = d.BucketBounds(15);
  EXPECT_EQ(llo, 60);
  EXPECT_EQ(lhi, 63);
}

TEST(ColumnDomainTest, IntBucketsClampsOutOfRange) {
  auto d = ColumnDomain::IntBuckets(0, 63, 16);
  EXPECT_EQ(d.CellIndex(Value::Int(-5)), 0);
  EXPECT_EQ(d.CellIndex(Value::Int(1000)), 15);
  EXPECT_EQ(d.CellIndex(Value::String("x")), -1);
}

TEST(ColumnDomainTest, BucketCountClampedToSpan) {
  auto d = ColumnDomain::IntBuckets(0, 3, 100);  // only 4 integers
  EXPECT_EQ(d.CellCount(), 4);
}

TEST(ColumnDomainTest, NoneDomainIsUnbounded) {
  auto d = ColumnDomain::None();
  EXPECT_FALSE(d.IsBounded());
  EXPECT_EQ(d.CellCount(), 0);
}

TEST(SchemaTest, AddAndLookup) {
  Schema schema = testing_support::MakeTestSchema();
  EXPECT_NE(schema.FindTable("customer"), nullptr);
  EXPECT_EQ(schema.FindTable("nope"), nullptr);
  EXPECT_FALSE(schema.GetTable("nope").ok());
  auto names = schema.TableNames();
  EXPECT_EQ(names.size(), 3u);
}

TEST(SchemaTest, DuplicateTableRejected) {
  Schema schema;
  ASSERT_TRUE(schema.AddTable(TableSchema("t", {}, "id")).ok());
  EXPECT_EQ(schema.AddTable(TableSchema("t", {}, "id")).code(),
            StatusCode::kAlreadyExists);
}

TEST(SchemaTest, ColumnLookup) {
  Schema schema = testing_support::MakeTestSchema();
  const TableSchema* orders = schema.FindTable("orders");
  ASSERT_NE(orders, nullptr);
  EXPECT_TRUE(orders->ColumnIndex("o_status").has_value());
  EXPECT_FALSE(orders->ColumnIndex("nonexistent").has_value());
  EXPECT_EQ(orders->primary_key(), "o_orderkey");
}

TEST(SchemaTest, TransitiveForeignKeyReachability) {
  Schema schema = testing_support::MakeTestSchema();
  EXPECT_TRUE(schema.References("orders", "customer"));
  EXPECT_TRUE(schema.References("lineitem", "customer"));  // via orders
  EXPECT_TRUE(schema.References("lineitem", "orders"));
  EXPECT_FALSE(schema.References("customer", "orders"));
  EXPECT_FALSE(schema.References("customer", "lineitem"));
}

TEST(SchemaTest, PrivacyRelationsIncludeReferencingTables) {
  Schema schema = testing_support::MakeTestSchema();
  auto rels = schema.PrivacyRelations("customer");
  EXPECT_EQ(rels.size(), 3u);  // customer, orders, lineitem
  rels = schema.PrivacyRelations("orders");
  EXPECT_EQ(rels.size(), 2u);  // orders, lineitem
  rels = schema.PrivacyRelations("lineitem");
  EXPECT_EQ(rels.size(), 1u);
}

}  // namespace
}  // namespace viewrewrite
