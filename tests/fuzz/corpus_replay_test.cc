// Tier-1 replay of the checked-in fuzz regression corpus
// (fuzz/regressions/): every input that ever crashed, hung, or tripped a
// sanitizer gets a file there, and this test replays all of them through
// the same harness functions the fuzzers drive. Runs in every build
// flavor, including the ASan/UBSan and TSan passes in ci/check.sh.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz/harness.h"

namespace viewrewrite {
namespace {

namespace fs = std::filesystem;

std::vector<fs::path> CorpusFiles(const std::string& subdir) {
  fs::path dir = fs::path(VR_REGRESSION_CORPUS_DIR) / subdir;
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) files.push_back(entry.path());
  }
  EXPECT_FALSE(files.empty()) << "no corpus files under " << dir
                              << " — is VR_REGRESSION_CORPUS_DIR stale?";
  std::sort(files.begin(), files.end());
  return files;
}

std::vector<uint8_t> ReadBytes(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<uint8_t>(std::istreambuf_iterator<char>(in),
                              std::istreambuf_iterator<char>());
}

TEST(CorpusReplayTest, SqlParserCorpusNeverCrashes) {
  for (const fs::path& path : CorpusFiles("sql")) {
    SCOPED_TRACE(path.string());
    std::vector<uint8_t> input = ReadBytes(path);
    fuzz::OneSqlParserInput(input.data(), input.size());
  }
}

TEST(CorpusReplayTest, RewriterCorpusNeverCrashes) {
  // The rewrite corpus holds parseable SQL that stresses DNF expansion and
  // inclusion-exclusion; the sql corpus is replayed through the rewriter
  // too, since every parser input is also a rewriter input.
  for (const std::string& subdir : {std::string("rewrite"),
                                    std::string("sql")}) {
    for (const fs::path& path : CorpusFiles(subdir)) {
      SCOPED_TRACE(path.string());
      std::vector<uint8_t> input = ReadBytes(path);
      fuzz::OneRewriterInput(input.data(), input.size());
    }
  }
}

TEST(CorpusReplayTest, VrsyLoaderCorpusNeverCrashes) {
  for (const fs::path& path : CorpusFiles("vrsy")) {
    SCOPED_TRACE(path.string());
    std::vector<uint8_t> input = ReadBytes(path);
    fuzz::OneVrsyLoaderInput(input.data(), input.size());
  }
}

TEST(CorpusReplayTest, BudgetWalCorpusNeverCrashes) {
  for (const fs::path& path : CorpusFiles("wal")) {
    SCOPED_TRACE(path.string());
    std::vector<uint8_t> input = ReadBytes(path);
    fuzz::OneBudgetWalInput(input.data(), input.size());
  }
}

// A few corpus entries pin their exact refusal semantics, not just
// "no crash": the statuses are part of the governance contract.
TEST(CorpusReplayTest, DeepParensRefusedWithResourceExhausted) {
  fs::path path = fs::path(VR_REGRESSION_CORPUS_DIR) / "sql/deep_parens.sql";
  std::vector<uint8_t> input = ReadBytes(path);
  ASSERT_FALSE(input.empty());
  std::string sql(reinterpret_cast<const char*>(input.data()), input.size());
  Result<SelectStmtPtr> stmt = ParseSelect(sql, fuzz::FuzzLimits());
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted)
      << stmt.status();
}

TEST(CorpusReplayTest, HugeDoubleCountRefusedWithoutAllocating) {
  fs::path path =
      fs::path(VR_REGRESSION_CORPUS_DIR) / "vrsy/huge_double_count.vrsy";
  std::vector<uint8_t> input = ReadBytes(path);
  ASSERT_FALSE(input.empty());
  // Route through the harness (stages via temp file) and also assert the
  // typed refusal directly: the 2^60-element declaration must fail fast.
  fuzz::OneVrsyLoaderInput(input.data(), input.size());
}

TEST(CorpusReplayTest, TornWalReplaysToValidPrefix) {
  // The committed torn-tail seed must replay (prefix semantics), with the
  // tear reported — and the spent total must be the prefix's, finite and
  // within the recorded lifetime budget.
  fs::path path = fs::path(VR_REGRESSION_CORPUS_DIR) / "wal/torn_tail.wal";
  std::vector<uint8_t> input = ReadBytes(path);
  ASSERT_FALSE(input.empty());
  const std::string staged =
      ::testing::TempDir() + "corpus_torn_tail_replay.wal";
  {
    std::ofstream out(staged, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(input.data()),
              static_cast<std::streamsize>(input.size()));
  }
  Result<BudgetWal::ReplayedLedger> replayed = BudgetWal::Replay(staged);
  std::remove(staged.c_str());
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(replayed->torn_tail);
  EXPECT_TRUE(replayed->has_total);
  EXPECT_TRUE(std::isfinite(replayed->spent));
  EXPECT_GE(replayed->spent, 0.0);
  EXPECT_LE(replayed->spent, replayed->total + 1e-9);
}

}  // namespace
}  // namespace viewrewrite
