#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "engine/private_sql_engine.h"
#include "engine/viewrewrite_engine.h"
#include "workload/workload.h"

namespace viewrewrite {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig config;
    config.scale = 1;
    config.customers = 150;  // small instance keeps the suite fast
    config.parts = 100;
    db_ = GenerateTpch(config).release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  std::vector<std::string> SmallWorkload(int w, size_t n) {
    WorkloadGenerator gen(1, 11);
    auto queries = gen.Generate(w);
    EXPECT_TRUE(queries.ok());
    std::vector<std::string> sql;
    for (size_t i = 0; i < std::min(n, queries->size()); ++i) {
      sql.push_back((*queries)[i].sql);
    }
    return sql;
  }

  static Database* db_;
};

Database* EngineTest::db_ = nullptr;

TEST_F(EngineTest, RelativeErrorMetricMatchesPaper) {
  EXPECT_DOUBLE_EQ(RelativeErrorMetric(100, 110), 0.1);
  // Denominator floors at 50.
  EXPECT_DOUBLE_EQ(RelativeErrorMetric(10, 20), 10.0 / 50.0);
  EXPECT_DOUBLE_EQ(RelativeErrorMetric(0, 5), 0.1);
}

TEST_F(EngineTest, PrepareAndAnswerMixedWorkload) {
  EngineOptions opts;
  opts.epsilon = 8.0;
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
  auto workload = SmallWorkload(1, 42);
  {
    Status st = engine.Prepare(workload);
    ASSERT_TRUE(st.ok()) << st;
  }
  EXPECT_EQ(engine.NumQueries(), 42u);
  EXPECT_GT(engine.NumViews(), 0u);
  EXPECT_LT(engine.NumViews(), 20u);
  for (size_t i = 0; i < engine.NumQueries(); ++i) {
    auto err = engine.RelativeError(i);
    ASSERT_TRUE(err.ok()) << "query " << i << ": " << workload[i] << "\n"
                          << err.status();
    EXPECT_GE(*err, 0.0);
  }
}

TEST_F(EngineTest, ViewCountFlatAcrossWorkloadSizes) {
  EngineOptions opts;
  size_t views_small, views_large;
  {
    ViewRewriteEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
    ASSERT_TRUE(engine.Prepare(SmallWorkload(16, 30)).ok());
    views_small = engine.NumViews();
  }
  {
    ViewRewriteEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
    ASSERT_TRUE(engine.Prepare(SmallWorkload(16, 120)).ok());
    views_large = engine.NumViews();
  }
  EXPECT_EQ(views_small, views_large);
}

TEST_F(EngineTest, PrivateSqlViewCountGrowsWithWorkload) {
  EngineOptions opts;
  size_t views_small, views_large;
  {
    PrivateSqlEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
    ASSERT_TRUE(engine.Prepare(SmallWorkload(16, 30)).ok());
    views_small = engine.NumViews();
  }
  {
    PrivateSqlEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
    ASSERT_TRUE(engine.Prepare(SmallWorkload(16, 120)).ok());
    views_large = engine.NumViews();
  }
  EXPECT_GT(views_large, views_small);
}

TEST_F(EngineTest, ViewRewriteGeneratesFewerViewsThanPrivateSql) {
  EngineOptions opts;
  auto workload = SmallWorkload(11, 60);
  ViewRewriteEngine vr(*db_, PrivacyPolicy{"orders"}, opts);
  PrivateSqlEngine ps(*db_, PrivacyPolicy{"orders"}, opts);
  {
    Status st = vr.Prepare(workload);
    ASSERT_TRUE(st.ok()) << st;
  }
  {
    Status st = ps.Prepare(workload);
    ASSERT_TRUE(st.ok()) << st;
  }
  EXPECT_LT(vr.NumViews(), ps.NumViews());
}

TEST_F(EngineTest, BothEnginesAgreeOnTrueAnswers) {
  // The engines rewrite differently but must compute identical exact
  // answers — a cross-check of rewrite-rule equivalence.
  EngineOptions opts;
  auto workload = SmallWorkload(11, 40);
  ViewRewriteEngine vr(*db_, PrivacyPolicy{"orders"}, opts);
  PrivateSqlEngine ps(*db_, PrivacyPolicy{"orders"}, opts);
  {
    Status st = vr.Prepare(workload);
    ASSERT_TRUE(st.ok()) << st;
  }
  {
    Status st = ps.Prepare(workload);
    ASSERT_TRUE(st.ok()) << st;
  }
  for (size_t i = 0; i < workload.size(); ++i) {
    auto a = vr.TrueAnswer(i);
    auto b = ps.TrueAnswer(i);
    ASSERT_TRUE(a.ok()) << workload[i] << ": " << a.status();
    ASSERT_TRUE(b.ok()) << workload[i] << ": " << b.status();
    EXPECT_DOUBLE_EQ(*a, *b) << workload[i];
  }
}

TEST_F(EngineTest, HigherEpsilonLowersError) {
  auto workload = SmallWorkload(1, 30);
  double err_low = 0;
  double err_high = 0;
  {
    EngineOptions opts;
    opts.epsilon = 0.25;
    ViewRewriteEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
    {
    Status st = engine.Prepare(workload);
    ASSERT_TRUE(st.ok()) << st;
  }
    for (size_t i = 0; i < workload.size(); ++i) {
      err_low += *engine.RelativeError(i);
    }
  }
  {
    EngineOptions opts;
    opts.epsilon = 64.0;
    ViewRewriteEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
    {
    Status st = engine.Prepare(workload);
    ASSERT_TRUE(st.ok()) << st;
  }
    for (size_t i = 0; i < workload.size(); ++i) {
      err_high += *engine.RelativeError(i);
    }
  }
  EXPECT_GT(err_low, err_high);
}

TEST_F(EngineTest, StatsPopulated) {
  EngineOptions opts;
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
  ASSERT_TRUE(engine.Prepare(SmallWorkload(1, 20)).ok());
  (void)engine.NoisyAnswer(0);
  const EngineStats& s = engine.stats();
  EXPECT_EQ(s.num_queries, 20u);
  EXPECT_GT(s.num_views, 0u);
  EXPECT_GT(s.SynopsisSeconds(), 0.0);
  EXPECT_GT(s.answer_seconds, 0.0);
}

TEST_F(EngineTest, DeterministicAcrossRuns) {
  EngineOptions opts;
  opts.seed = 1234;
  auto workload = SmallWorkload(1, 15);
  std::vector<double> run1, run2;
  for (int run = 0; run < 2; ++run) {
    ViewRewriteEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
    {
    Status st = engine.Prepare(workload);
    ASSERT_TRUE(st.ok()) << st;
  }
    auto& out = run == 0 ? run1 : run2;
    for (size_t i = 0; i < workload.size(); ++i) {
      out.push_back(*engine.NoisyAnswer(i));
    }
  }
  EXPECT_EQ(run1, run2);
}

}  // namespace
}  // namespace viewrewrite
