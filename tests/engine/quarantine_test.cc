#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "engine/private_sql_engine.h"
#include "engine/viewrewrite_engine.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// Degraded-mode preparation: failing workload queries are quarantined
/// with their recorded status while the healthy remainder of the batch is
/// still rewritten, published, and answered.
class QuarantineTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = testing_support::MakeTestDatabase(8, 40); }
  void TearDown() override { FaultInjection::Instance().DisableAll(); }

  static std::vector<std::string> HealthyWorkload() {
    return {
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64",
        "SELECT COUNT(*) FROM customer c WHERE c.c_nation = 1",
        "SELECT COUNT(*) FROM orders o WHERE o.o_status = 'f'",
    };
  }

  std::unique_ptr<Database> db_;
};

TEST_F(QuarantineTest, BadSqlIsQuarantinedHealthyQueriesAnswer) {
  auto workload = HealthyWorkload();
  workload.insert(workload.begin() + 1, "SELEC COUNT(* FROM nonsense");
  workload.push_back("SELECT COUNT(*) FROM no_such_table t");

  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"});
  Status st = engine.Prepare(workload);
  ASSERT_TRUE(st.ok()) << st;

  const PrepareReport& report = engine.report();
  ASSERT_EQ(report.query_status.size(), workload.size());
  EXPECT_EQ(report.num_quarantined, 2u);
  EXPECT_EQ(report.num_prepared, workload.size() - 2);
  EXPECT_FALSE(report.AllHealthy());
  EXPECT_EQ(report.query_status[1].code(), StatusCode::kParseError);
  EXPECT_FALSE(report.query_status[4].ok());

  for (size_t i : {size_t{0}, size_t{2}, size_t{3}}) {
    ASSERT_TRUE(report.query_status[i].ok()) << i;
    auto err = engine.RelativeError(i);
    ASSERT_TRUE(err.ok()) << i << ": " << err.status();
    EXPECT_TRUE(std::isfinite(*err)) << i;
  }
  // Quarantined indices return the recorded status from every accessor.
  EXPECT_EQ(engine.NoisyAnswer(1).status().code(), StatusCode::kParseError);
  EXPECT_EQ(engine.TrueAnswer(1).status().code(), StatusCode::kParseError);
  EXPECT_EQ(engine.RelativeError(1).status().code(), StatusCode::kParseError);
  EXPECT_FALSE(engine.NoisyAnswer(4).ok());
  // Index alignment is preserved despite the quarantine.
  EXPECT_EQ(engine.NumQueries(), workload.size());
}

TEST_F(QuarantineTest, StrictModePreservesFailFast) {
  auto workload = HealthyWorkload();
  workload.insert(workload.begin() + 1, "SELEC COUNT(* FROM nonsense");
  EngineOptions opts;
  opts.strict = true;
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"}, opts);
  Status st = engine.Prepare(workload);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kParseError);
}

TEST_F(QuarantineTest, InjectedParseFaultQuarantinesNthQuery) {
  ScopedFault fault = ScopedFault::OnNth(
      faults::kParse, 2, Status::ParseError("injected parse fault"));
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"});
  Status st = engine.Prepare(HealthyWorkload());
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(engine.report().num_quarantined, 1u);
  EXPECT_EQ(engine.NoisyAnswer(1).status().message(), "injected parse fault");
  EXPECT_TRUE(engine.NoisyAnswer(0).ok());
  EXPECT_TRUE(engine.NoisyAnswer(2).ok());
}

TEST_F(QuarantineTest, InjectedRewriteFaultQuarantinesNthQuery) {
  ScopedFault fault = ScopedFault::OnNth(
      faults::kRewrite, 3, Status::RewriteError("injected rewrite fault"));
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"});
  Status st = engine.Prepare(HealthyWorkload());
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(engine.report().num_quarantined, 1u);
  EXPECT_EQ(engine.NoisyAnswer(2).status().code(), StatusCode::kRewriteError);
  EXPECT_TRUE(engine.NoisyAnswer(0).ok());
  EXPECT_TRUE(engine.NoisyAnswer(1).ok());
}

TEST_F(QuarantineTest, InjectedRegisterFaultQuarantinesQuery) {
  ScopedFault fault = ScopedFault::OnNth(faults::kViewRegister, 1);
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"});
  Status st = engine.Prepare(HealthyWorkload());
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(engine.report().num_quarantined, 1u);
  EXPECT_FALSE(engine.NoisyAnswer(0).ok());
  EXPECT_TRUE(engine.NoisyAnswer(1).ok());
  EXPECT_TRUE(engine.NoisyAnswer(2).ok());
}

TEST_F(QuarantineTest, PrivateSqlEngineSharesTheContract) {
  auto workload = HealthyWorkload();
  workload.insert(workload.begin() + 1, "SELEC COUNT(* FROM nonsense");
  PrivateSqlEngine engine(*db_, PrivacyPolicy{"customer"});
  Status st = engine.Prepare(workload);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(engine.report().num_quarantined, 1u);
  EXPECT_EQ(engine.NoisyAnswer(1).status().code(), StatusCode::kParseError);
  for (size_t i : {size_t{0}, size_t{2}, size_t{3}}) {
    auto err = engine.RelativeError(i);
    ASSERT_TRUE(err.ok()) << i << ": " << err.status();
    EXPECT_TRUE(std::isfinite(*err)) << i;
  }
}

TEST_F(QuarantineTest, AllQueriesFailingIsAnError) {
  std::vector<std::string> workload = {"not sql at all", "SELEC"};
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"});
  Status st = engine.Prepare(workload);
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kExecutionError);
  EXPECT_EQ(engine.report().num_prepared, 0u);
  EXPECT_EQ(engine.report().num_quarantined, 2u);
}

TEST_F(QuarantineTest, EmptyWorkloadIsOkInDegradedMode) {
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"});
  EXPECT_TRUE(engine.Prepare({}).ok());
  EXPECT_EQ(engine.NumQueries(), 0u);
  EXPECT_FALSE(engine.NoisyAnswer(0).ok());  // out of range, not a crash
}

}  // namespace
}  // namespace viewrewrite
