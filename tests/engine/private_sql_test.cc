#include <gtest/gtest.h>

#include "datagen/tpch.h"
#include "engine/private_sql_engine.h"
#include "engine/viewrewrite_engine.h"

namespace viewrewrite {
namespace {

/// Behavioural contract of the PrivateSQL baseline reimplementation: the
/// view definition absorbs subquery predicates (constants included), so
/// distinct subquery constants multiply views; main-query predicates over
/// base attributes are still shared.
class PrivateSqlTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    TpchConfig config;
    config.customers = 120;
    config.parts = 60;
    db_ = GenerateTpch(config).release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  size_t ViewsFor(const std::vector<std::string>& workload) {
    EngineOptions opts;
    PrivateSqlEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
    Status st = engine.Prepare(workload);
    EXPECT_TRUE(st.ok()) << st;
    return engine.NumViews();
  }

  static Database* db_;
};

Database* PrivateSqlTest::db_ = nullptr;

TEST_F(PrivateSqlTest, MainQueryConstantsShareOneView) {
  std::vector<std::string> workload;
  for (int k = 1; k <= 6; ++k) {
    workload.push_back(
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= " +
        std::to_string(4096 * k));
  }
  EXPECT_EQ(ViewsFor(workload), 1u);
}

TEST_F(PrivateSqlTest, SubqueryConstantsMultiplyViews) {
  std::vector<std::string> workload;
  for (int k = 1; k <= 6; ++k) {
    workload.push_back(
        "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM "
        "orders o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= " +
        std::to_string(32 * k) + ")");
  }
  // One main view + one per distinct subquery constant.
  EXPECT_GE(ViewsFor(workload), 6u);
}

TEST_F(PrivateSqlTest, DerivedTableConstantsMultiplyViews) {
  std::vector<std::string> workload;
  for (int k = 1; k <= 5; ++k) {
    workload.push_back(
        "SELECT COUNT(*) FROM customer c, (SELECT o_custkey, COUNT(*) AS "
        "cnt FROM orders GROUP BY o_custkey HAVING COUNT(*) >= " +
        std::to_string(k) +
        ") dt WHERE c.c_custkey = dt.o_custkey AND c.c_mktsegment = 1");
  }
  EXPECT_GE(ViewsFor(workload), 5u);
  // ViewRewrite collapses the same workload to one view.
  EngineOptions opts;
  ViewRewriteEngine vr(*db_, PrivacyPolicy{"orders"}, opts);
  ASSERT_TRUE(vr.Prepare(workload).ok());
  EXPECT_EQ(vr.NumViews(), 1u);
}

TEST_F(PrivateSqlTest, NonCorrelatedSubqueryLinksBakeConstants) {
  std::vector<std::string> workload;
  for (int y = 1992; y <= 1996; ++y) {
    workload.push_back(
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice > (SELECT "
        "AVG(o2.o_totalprice) FROM orders o2 WHERE o2.o_orderyear = " +
        std::to_string(y) + ")");
  }
  // One shared main view plus one chain-link view per distinct year.
  EXPECT_EQ(ViewsFor(workload), 6u);
}

TEST_F(PrivateSqlTest, AnswersAreUsable) {
  std::vector<std::string> workload = {
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 16384",
      "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM orders "
      "o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= 64)",
  };
  EngineOptions opts;
  opts.epsilon = 64.0;
  PrivateSqlEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
  ASSERT_TRUE(engine.Prepare(workload).ok());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto noisy = engine.NoisyAnswer(i);
    auto truth = engine.TrueAnswer(i);
    ASSERT_TRUE(noisy.ok() && truth.ok());
    // Large budget: answers land near the truth.
    EXPECT_NEAR(*noisy, *truth, std::max(10.0, 0.2 * *truth))
        << workload[i];
  }
}

TEST_F(PrivateSqlTest, BakedViewsAnswerSubqueryPredicatesExactly) {
  // The baked EXISTS predicate is evaluated at materialization, so with a
  // huge budget the baseline answer equals the executor's.
  std::vector<std::string> workload = {
      "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM orders "
      "o WHERE o.o_custkey = c.c_custkey AND o.o_totalprice >= 32768)",
  };
  EngineOptions opts;
  opts.epsilon = 1e9;
  PrivateSqlEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
  ASSERT_TRUE(engine.Prepare(workload).ok());
  auto noisy = engine.NoisyAnswer(0);
  auto truth = engine.TrueAnswer(0);
  ASSERT_TRUE(noisy.ok() && truth.ok());
  EXPECT_NEAR(*noisy, *truth, 1e-3);
}

TEST_F(PrivateSqlTest, DeterministicAcrossRuns) {
  std::vector<std::string> workload = {
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 16384",
  };
  EngineOptions opts;
  opts.seed = 99;
  double first = 0;
  for (int run = 0; run < 2; ++run) {
    PrivateSqlEngine engine(*db_, PrivacyPolicy{"orders"}, opts);
    ASSERT_TRUE(engine.Prepare(workload).ok());
    auto noisy = engine.NoisyAnswer(0);
    ASSERT_TRUE(noisy.ok());
    if (run == 0) {
      first = *noisy;
    } else {
      EXPECT_EQ(*noisy, first);
    }
  }
}

}  // namespace
}  // namespace viewrewrite
