#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "engine/viewrewrite_engine.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// Per-view publish recovery: a view whose synopsis fails is marked
/// failed, its budget slice is refunded, the surviving views still
/// publish, and only the queries bound to the failed view are
/// quarantined.
class PublishRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = testing_support::MakeTestDatabase(8, 40); }
  void TearDown() override { FaultInjection::Instance().DisableAll(); }

  /// Two views: queries 0 and 2 share the orders view, query 1 uses the
  /// customer view. Registration order makes the orders view publish
  /// first.
  static std::vector<std::string> TwoViewWorkload() {
    return {
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64",
        "SELECT COUNT(*) FROM customer c WHERE c.c_nation = 1",
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice < 32",
    };
  }

  std::unique_ptr<Database> db_;
};

TEST_F(PublishRecoveryTest, FailedViewIsRefundedAndOthersSurvive) {
  ScopedFault fault = ScopedFault::OnNth(
      faults::kViewPublish, 1, Status::PrivacyError("injected publish fault"));
  EngineOptions opts;
  opts.epsilon = 8.0;
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"}, opts);
  Status st = engine.Prepare(TwoViewWorkload());
  ASSERT_TRUE(st.ok()) << st;

  ASSERT_EQ(engine.NumViews(), 2u);
  EXPECT_EQ(engine.views().failed_views().size(), 1u);
  EXPECT_EQ(engine.views().NumPublished(), 1u);
  EXPECT_EQ(engine.report().num_views_failed, 1u);
  EXPECT_EQ(engine.report().num_quarantined, 2u);

  // Queries bound to the failed (orders) view carry its recorded status.
  EXPECT_EQ(engine.NoisyAnswer(0).status().message(),
            "injected publish fault");
  EXPECT_EQ(engine.NoisyAnswer(2).status().code(), StatusCode::kPrivacyError);
  // The customer view survived and answers with finite noise.
  auto err = engine.RelativeError(1);
  ASSERT_TRUE(err.ok()) << err.status();
  EXPECT_TRUE(std::isfinite(*err));

  // Budget: the failed view's uniform slice (epsilon/2) was refunded, so
  // only the surviving view's slice stays spent.
  const BudgetAccountant* acc = engine.views().accountant();
  ASSERT_NE(acc, nullptr);
  EXPECT_NEAR(acc->spent(), 4.0, 1e-9);
  EXPECT_LE(acc->spent(), acc->total());
  bool saw_refund = false;
  for (const auto& entry : acc->ledger()) {
    if (entry.refund) {
      saw_refund = true;
      EXPECT_NEAR(entry.epsilon, -4.0, 1e-9);
      EXPECT_NE(entry.label.find("refund:synopsis:"), std::string::npos);
    }
  }
  EXPECT_TRUE(saw_refund);
}

TEST_F(PublishRecoveryTest, StrictModePropagatesPublishFailure) {
  ScopedFault fault = ScopedFault::OnNth(
      faults::kViewPublish, 1, Status::PrivacyError("injected publish fault"));
  EngineOptions opts;
  opts.strict = true;
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"}, opts);
  Status st = engine.Prepare(TwoViewWorkload());
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.message(), "injected publish fault");
}

TEST_F(PublishRecoveryTest, MechanismFaultInsideBuildIsRecoveredPerView) {
  // The first mechanism invocation happens inside the first view's
  // synopsis pipeline; the failure must stay contained to that view.
  ScopedFault fault = ScopedFault::OnNth(
      faults::kDpMechanism, 1, Status::PrivacyError("injected noise failure"));
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"});
  Status st = engine.Prepare(TwoViewWorkload());
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_EQ(engine.views().failed_views().size(), 1u);
  EXPECT_EQ(engine.views().NumPublished(), 1u);
  EXPECT_FALSE(engine.NoisyAnswer(0).ok());
  EXPECT_TRUE(engine.NoisyAnswer(1).ok());
  const BudgetAccountant* acc = engine.views().accountant();
  ASSERT_NE(acc, nullptr);
  EXPECT_LE(acc->spent(), acc->total());
  EXPECT_NEAR(acc->spent(), 4.0, 1e-9);
}

TEST_F(PublishRecoveryTest, ParseAndPublishFaultsComposeInDegradedMode) {
  // The acceptance scenario: a parse failure on query k plus a publish
  // failure on one view. Unaffected queries answer with finite noise,
  // quarantined indices return their recorded status, and the ledger
  // refunds the failed view's slice.
  ScopedFault parse_fault = ScopedFault::OnNth(
      faults::kParse, 2, Status::ParseError("injected parse fault"));
  ScopedFault publish_fault = ScopedFault::OnNth(
      faults::kViewPublish, 1, Status::PrivacyError("injected publish fault"));

  std::vector<std::string> workload = {
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64",   // view A
      "SELECT COUNT(*) FROM customer c WHERE c.c_nation = 1",       // parse-faulted
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice < 32",    // view A
      "SELECT COUNT(*) FROM customer c WHERE c.c_acctbal >= 32",    // view B
  };
  EngineOptions opts;
  opts.epsilon = 8.0;
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"customer"}, opts);
  Status st = engine.Prepare(workload);
  ASSERT_TRUE(st.ok()) << st;

  const PrepareReport& report = engine.report();
  EXPECT_EQ(report.query_status[1].code(), StatusCode::kParseError);
  // Queries 0 and 2 are bound to view A, which the publish fault killed.
  EXPECT_EQ(report.query_status[0].code(), StatusCode::kPrivacyError);
  EXPECT_EQ(report.query_status[2].code(), StatusCode::kPrivacyError);
  EXPECT_EQ(report.num_quarantined, 3u);
  EXPECT_EQ(report.num_prepared, 1u);

  auto err = engine.RelativeError(3);
  ASSERT_TRUE(err.ok()) << err.status();
  EXPECT_TRUE(std::isfinite(*err));

  const BudgetAccountant* acc = engine.views().accountant();
  ASSERT_NE(acc, nullptr);
  EXPECT_LE(acc->spent(), acc->total());
  EXPECT_NEAR(acc->spent(), 4.0, 1e-9);
  bool saw_refund = false;
  for (const auto& entry : acc->ledger()) saw_refund |= entry.refund;
  EXPECT_TRUE(saw_refund);
}

}  // namespace
}  // namespace viewrewrite
