#include <gtest/gtest.h>

#include "datagen/census.h"
#include "engine/private_sql_engine.h"
#include "engine/viewrewrite_engine.h"
#include "workload/workload.h"

namespace viewrewrite {
namespace {

class CensusEngineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    CensusConfig config;
    config.households = 300;
    db_ = GenerateCensus(config).release();
  }
  static void TearDownTestSuite() {
    delete db_;
    db_ = nullptr;
  }

  std::vector<std::string> Workload(size_t n,
                                    const std::string& family = "") {
    WorkloadGenerator gen(1, 77);
    auto queries = gen.Generate(31);
    EXPECT_TRUE(queries.ok());
    std::vector<std::string> out;
    for (const WorkloadQuery& q : *queries) {
      if (out.size() >= n) break;
      if (!family.empty() && q.family != family) continue;
      out.push_back(q.sql);
    }
    return out;
  }

  static Database* db_;
};

Database* CensusEngineTest::db_ = nullptr;

TEST_F(CensusEngineTest, EndToEndUnderHouseholdPolicy) {
  EngineOptions opts;
  opts.epsilon = 8.0;
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"household"}, opts);
  auto workload = Workload(36);
  Status st = engine.Prepare(workload);
  ASSERT_TRUE(st.ok()) << st;
  EXPECT_GT(engine.NumViews(), 0u);
  EXPECT_LT(engine.NumViews(), 10u);
  for (size_t i = 0; i < workload.size(); ++i) {
    auto err = engine.RelativeError(i);
    ASSERT_TRUE(err.ok()) << workload[i] << "\n" << err.status();
  }
}

TEST_F(CensusEngineTest, ExactViewAnswersMatchExecutorOnCensus) {
  EngineOptions opts;
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"household"}, opts);
  // Only the fully bucket-aligned families are cell-exact; correlated
  // comparisons against aggregate attributes and finer-than-bucket key
  // constants answer at cell-midpoint granularity by design.
  auto workload = Workload(12, "single");
  auto joins = Workload(12, "join");
  workload.insert(workload.end(), joins.begin(), joins.end());
  ASSERT_TRUE(engine.Prepare(workload).ok());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto via_views = engine.ExactViewAnswer(i);
    auto via_exec = engine.TrueAnswer(i);
    ASSERT_TRUE(via_views.ok()) << workload[i] << "\n" << via_views.status();
    ASSERT_TRUE(via_exec.ok()) << workload[i] << "\n" << via_exec.status();
    EXPECT_NEAR(*via_views, *via_exec, 1e-6) << workload[i];
  }
}

TEST_F(CensusEngineTest, PersonPolicyAlsoWorks) {
  // The person relation as primary: households are upstream (not
  // protected), persons protected directly.
  EngineOptions opts;
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"person"}, opts);
  auto workload = Workload(18);
  Status st = engine.Prepare(workload);
  ASSERT_TRUE(st.ok()) << st;
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_TRUE(engine.NoisyAnswer(i).ok());
  }
}

TEST_F(CensusEngineTest, BaselineComparableOnCensus) {
  EngineOptions opts;
  auto workload = Workload(30);
  ViewRewriteEngine vr(*db_, PrivacyPolicy{"household"}, opts);
  PrivateSqlEngine ps(*db_, PrivacyPolicy{"household"}, opts);
  ASSERT_TRUE(vr.Prepare(workload).ok());
  ASSERT_TRUE(ps.Prepare(workload).ok());
  EXPECT_LE(vr.NumViews(), ps.NumViews());
  for (size_t i = 0; i < workload.size(); ++i) {
    auto a = vr.TrueAnswer(i);
    auto b = ps.TrueAnswer(i);
    ASSERT_TRUE(a.ok() && b.ok());
    EXPECT_DOUBLE_EQ(*a, *b) << workload[i];
  }
}

TEST_F(CensusEngineTest, UsageWeightedAllocationRuns) {
  EngineOptions opts;
  opts.budget_allocation = BudgetAllocation::kByUsage;
  ViewRewriteEngine engine(*db_, PrivacyPolicy{"household"}, opts);
  auto workload = Workload(24);
  ASSERT_TRUE(engine.Prepare(workload).ok());
  for (size_t i = 0; i < workload.size(); ++i) {
    ASSERT_TRUE(engine.NoisyAnswer(i).ok());
  }
}

}  // namespace
}  // namespace viewrewrite
