#include <gtest/gtest.h>

#include "exec/executor.h"
#include "sql/parser.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

// Same fixture as executor_test (kept local for independence):
//   customer: (1,0,10) (2,1,20) (3,0,30)
//   orders:   (101,1,'f',50) (102,1,'o',60) (103,2,'f',70)
//   lineitem: (1001,101,5,100) (1002,101,2,200) (1003,103,7,150)
std::unique_ptr<Database> FixedDb() {
  auto db = std::make_unique<Database>(testing_support::MakeTestSchema());
  Table* c = db->MutableTable("customer");
  c->InsertUnchecked({Value::Int(1), Value::Int(0), Value::Int(10)});
  c->InsertUnchecked({Value::Int(2), Value::Int(1), Value::Int(20)});
  c->InsertUnchecked({Value::Int(3), Value::Int(0), Value::Int(30)});
  Table* o = db->MutableTable("orders");
  o->InsertUnchecked(
      {Value::Int(101), Value::Int(1), Value::String("f"), Value::Int(50)});
  o->InsertUnchecked(
      {Value::Int(102), Value::Int(1), Value::String("o"), Value::Int(60)});
  o->InsertUnchecked(
      {Value::Int(103), Value::Int(2), Value::String("f"), Value::Int(70)});
  Table* l = db->MutableTable("lineitem");
  l->InsertUnchecked(
      {Value::Int(1001), Value::Int(101), Value::Int(5), Value::Int(100)});
  l->InsertUnchecked(
      {Value::Int(1002), Value::Int(101), Value::Int(2), Value::Int(200)});
  l->InsertUnchecked(
      {Value::Int(1003), Value::Int(103), Value::Int(7), Value::Int(150)});
  return db;
}

class SubqueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = FixedDb();
    executor_ = std::make_unique<Executor>(*db_);
  }

  double Scalar(const std::string& sql, const ParamMap& params = {}) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << sql << ": " << stmt.status();
    auto r = executor_->ExecuteScalar(**stmt, params);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return r.ok() ? *r : -9999;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(SubqueryTest, NonCorrelatedScalarSubquery) {
  // avg(totalprice) = 60; orders above: 70 only.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_totalprice > "
                   "(SELECT AVG(o2.o_totalprice) FROM orders o2)"),
            1);
}

TEST_F(SubqueryTest, ScalarSubqueryInArithmetic) {
  // 0.5 * avg = 30; all orders above.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_totalprice > 0.5 * "
                   "(SELECT AVG(o2.o_totalprice) FROM orders o2)"),
            3);
}

TEST_F(SubqueryTest, EmptyScalarSubqueryIsNull) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_totalprice > "
                   "(SELECT MIN(o2.o_totalprice) FROM orders o2 WHERE "
                   "o2.o_totalprice > 999)"),
            0);
}

TEST_F(SubqueryTest, MultiRowScalarSubqueryErrors) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM orders WHERE o_totalprice > (SELECT "
      "o2.o_totalprice FROM orders o2)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(executor_->ExecuteScalar(**stmt).ok());
}

TEST_F(SubqueryTest, CorrelatedScalarSubquery) {
  // Customer 1: avg=55 -> orders 60 qualifies (not 50). Customer 2:
  // avg=70 -> no order strictly above. Total 1.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c, orders o WHERE "
                   "c.c_custkey = o.o_custkey AND o.o_totalprice > (SELECT "
                   "AVG(o2.o_totalprice) FROM orders o2 WHERE o2.o_custkey "
                   "= c.c_custkey)"),
            1);
}

TEST_F(SubqueryTest, CorrelatedCountComparedToZero) {
  // Customers with 0 orders: customer 3 only.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c WHERE (SELECT COUNT(*) "
                   "FROM orders o WHERE o.o_custkey = c.c_custkey) = 0"),
            1);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c WHERE (SELECT COUNT(*) "
                   "FROM orders o WHERE o.o_custkey = c.c_custkey) >= 2"),
            1);
}

TEST_F(SubqueryTest, ExistsCorrelated) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * "
                   "FROM orders o WHERE o.o_custkey = c.c_custkey)"),
            2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c WHERE NOT EXISTS "
                   "(SELECT * FROM orders o WHERE o.o_custkey = "
                   "c.c_custkey)"),
            1);
}

TEST_F(SubqueryTest, ExistsWithInnerFilter) {
  // Customers with an order over 65: customer 2 only.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * "
                   "FROM orders o WHERE o.o_custkey = c.c_custkey AND "
                   "o.o_totalprice > 65)"),
            1);
}

TEST_F(SubqueryTest, ExistsNonCorrelated) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * "
                   "FROM orders o WHERE o.o_totalprice > 65)"),
            3);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * "
                   "FROM orders o WHERE o.o_totalprice > 999)"),
            0);
}

TEST_F(SubqueryTest, InSubqueryNonCorrelated) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_custkey IN "
                   "(SELECT o_custkey FROM orders)"),
            2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_custkey NOT IN "
                   "(SELECT o_custkey FROM orders)"),
            1);
}

TEST_F(SubqueryTest, InSubqueryCorrelated) {
  // For each order: is its status among the statuses of *that customer's*
  // orders with price < 60? Customer 1 has {f(50)}; order 101 ('f') yes,
  // 102 ('o') no. Customer 2 has none under 60 -> 103 no. Total 1.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c, orders o WHERE "
                   "c.c_custkey = o.o_custkey AND o.o_status IN (SELECT "
                   "o2.o_status FROM orders o2 WHERE o2.o_custkey = "
                   "c.c_custkey AND o2.o_totalprice < 60)"),
            1);
}

TEST_F(SubqueryTest, QuantifiedAny) {
  // price > ANY(prices): orders strictly above the minimum (50): 2.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_totalprice > ANY "
                   "(SELECT o2.o_totalprice FROM orders o2)"),
            2);
}

TEST_F(SubqueryTest, QuantifiedAll) {
  // price >= ALL(prices): only the max (70).
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_totalprice >= ALL "
                   "(SELECT o2.o_totalprice FROM orders o2)"),
            1);
  // ALL over an empty set is TRUE.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_totalprice < ALL "
                   "(SELECT o2.o_totalprice FROM orders o2 WHERE "
                   "o2.o_totalprice > 999)"),
            3);
}

TEST_F(SubqueryTest, QuantifiedAnyEmptyIsFalse) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_totalprice > ANY "
                   "(SELECT o2.o_totalprice FROM orders o2 WHERE "
                   "o2.o_totalprice > 999)"),
            0);
}

TEST_F(SubqueryTest, EqAnyActsLikeIn) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_custkey = ANY "
                   "(SELECT o_custkey FROM orders)"),
            2);
}

TEST_F(SubqueryTest, CorrelatedQuantified) {
  // order price >= ALL lineitem prices of that order.
  // 101: prices {100,200}, 50 >= all? no. 102: no lineitems -> TRUE.
  // 103: {150}, 70 >= 150? no. Total 1.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= "
                   "ALL (SELECT l.l_price FROM lineitem l WHERE "
                   "l.l_orderkey = o.o_orderkey)"),
            1);
}

TEST_F(SubqueryTest, ParamsBindScalars) {
  ParamMap params;
  params["v0"] = Value::Int(55);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_totalprice > $v0",
                   params),
            2);
}

TEST_F(SubqueryTest, UnboundParamErrors) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM orders WHERE o_totalprice "
                          "> $nope");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(executor_->ExecuteScalar(**stmt).ok());
}

TEST_F(SubqueryTest, ExecuteRewrittenChainsAndCombines) {
  RewrittenQuery rq;
  auto link = ParseSelect("SELECT AVG(o_totalprice) FROM orders");
  ASSERT_TRUE(link.ok());
  rq.chain.push_back(ChainLink{"v0", std::move(link).value()});
  auto t1 = ParseSelect("SELECT COUNT(*) FROM orders WHERE o_totalprice > "
                        "$v0");
  auto t2 = ParseSelect("SELECT COUNT(*) FROM orders WHERE o_status = 'f'");
  ASSERT_TRUE(t1.ok() && t2.ok());
  QueryCombination::Term term1;
  term1.coeff = 1.0;
  term1.query = std::move(t1).value();
  QueryCombination::Term term2;
  term2.coeff = -1.0;
  term2.query = std::move(t2).value();
  rq.combination.terms.push_back(std::move(term1));
  rq.combination.terms.push_back(std::move(term2));
  auto r = executor_->ExecuteRewritten(rq);
  ASSERT_TRUE(r.ok()) << r.status();
  // avg=60 -> count(>60)=1; count(status 'f')=2; 1 - 2 = -1.
  EXPECT_EQ(*r, -1);
}

TEST_F(SubqueryTest, IfposGatesValue) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE "
                   "IFPOS(c_acctbal > 15, 1) = 1"),
            2);
  // ifpos false -> NULL -> comparison unknown -> filtered.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE "
                   "IFPOS(c_acctbal > 1000, 1) = 1"),
            0);
}

TEST_F(SubqueryTest, NestedNonCorrelatedSubqueries) {
  // Inner max price = 70; customers with custkey in orders with price=70:
  // customer 2.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_custkey IN "
                   "(SELECT o_custkey FROM orders WHERE o_totalprice = "
                   "(SELECT MAX(o2.o_totalprice) FROM orders o2))"),
            1);
}

}  // namespace
}  // namespace viewrewrite
