#include <gtest/gtest.h>

#include "exec/executor.h"
#include "sql/parser.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// Error-path contract of the executor: malformed queries fail with a
/// specific status instead of crashing or silently mis-answering.
class ExecutorErrorsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing_support::MakeTestDatabase(2, 10);
    executor_ = std::make_unique<Executor>(*db_);
  }

  Status Run(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    if (!stmt.ok()) return stmt.status();
    auto r = executor_->Execute(**stmt);
    return r.status();
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorErrorsTest, UnknownTable) {
  EXPECT_EQ(Run("SELECT COUNT(*) FROM nope").code(), StatusCode::kNotFound);
}

TEST_F(ExecutorErrorsTest, UnknownFunction) {
  EXPECT_EQ(Run("SELECT FROBNICATE(c_acctbal) FROM customer").code(),
            StatusCode::kUnsupported);
}

TEST_F(ExecutorErrorsTest, TypeMismatchInComparison) {
  EXPECT_EQ(Run("SELECT COUNT(*) FROM orders WHERE o_status > 5").code(),
            StatusCode::kTypeMismatch);
}

TEST_F(ExecutorErrorsTest, ArithmeticOnStrings) {
  EXPECT_EQ(Run("SELECT o_status + 1 FROM orders").code(),
            StatusCode::kTypeMismatch);
}

TEST_F(ExecutorErrorsTest, MultiColumnInSubquery) {
  EXPECT_EQ(Run("SELECT COUNT(*) FROM customer WHERE c_custkey IN (SELECT "
                "o_custkey, o_orderkey FROM orders)")
                .code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorErrorsTest, MultiColumnScalarSubquery) {
  EXPECT_EQ(Run("SELECT COUNT(*) FROM customer WHERE c_acctbal > (SELECT "
                "o_custkey, o_orderkey FROM orders)")
                .code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorErrorsTest, MultiColumnQuantifiedSubquery) {
  EXPECT_EQ(Run("SELECT COUNT(*) FROM customer WHERE c_acctbal > ALL "
                "(SELECT o_custkey, o_orderkey FROM orders)")
                .code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorErrorsTest, NaturalJoinNeedsCommonColumns) {
  EXPECT_EQ(Run("SELECT COUNT(*) FROM customer NATURAL JOIN orders").code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorErrorsTest, HavingWithoutGrouping) {
  EXPECT_EQ(Run("SELECT c_custkey FROM customer HAVING c_custkey > 1")
                .code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorErrorsTest, StarInGroupedQuery) {
  EXPECT_EQ(Run("SELECT * FROM orders GROUP BY o_custkey").code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorErrorsTest, AggregateInWhere) {
  EXPECT_EQ(Run("SELECT COUNT(*) FROM orders WHERE COUNT(*) > 1").code(),
            StatusCode::kExecutionError);
}

TEST_F(ExecutorErrorsTest, BadAggregateArity) {
  EXPECT_FALSE(Run("SELECT SUM(o_totalprice, o_custkey) FROM orders").ok());
}

TEST_F(ExecutorErrorsTest, SelectStarWithoutFrom) {
  EXPECT_EQ(Run("SELECT *").code(), StatusCode::kExecutionError);
}

TEST_F(ExecutorErrorsTest, OrderByOnDistinctNeedsOutputColumn) {
  EXPECT_EQ(Run("SELECT DISTINCT o_status FROM orders ORDER BY "
                "o_totalprice")
                .code(),
            StatusCode::kUnsupported);
}

TEST_F(ExecutorErrorsTest, CoalesceWithNoArgsYieldsNullNotError) {
  auto stmt = ParseSelect("SELECT COALESCE() FROM orders");
  ASSERT_TRUE(stmt.ok());
  auto r = executor_->Execute(**stmt);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->rows[0][0].is_null());
}

}  // namespace
}  // namespace viewrewrite
