#include "exec/executor.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// Tiny fixed instance for exact-answer assertions:
///   customer: (1,0,10) (2,1,20) (3,0,30)
///   orders:   (101,1,'f',50) (102,1,'o',60) (103,2,'f',70)
///   lineitem: (1001,101,5,100) (1002,101,2,200) (1003,103,7,150)
std::unique_ptr<Database> FixedDb() {
  auto db = std::make_unique<Database>(testing_support::MakeTestSchema());
  Table* c = db->MutableTable("customer");
  c->InsertUnchecked({Value::Int(1), Value::Int(0), Value::Int(10)});
  c->InsertUnchecked({Value::Int(2), Value::Int(1), Value::Int(20)});
  c->InsertUnchecked({Value::Int(3), Value::Int(0), Value::Int(30)});
  Table* o = db->MutableTable("orders");
  o->InsertUnchecked(
      {Value::Int(101), Value::Int(1), Value::String("f"), Value::Int(50)});
  o->InsertUnchecked(
      {Value::Int(102), Value::Int(1), Value::String("o"), Value::Int(60)});
  o->InsertUnchecked(
      {Value::Int(103), Value::Int(2), Value::String("f"), Value::Int(70)});
  Table* l = db->MutableTable("lineitem");
  l->InsertUnchecked(
      {Value::Int(1001), Value::Int(101), Value::Int(5), Value::Int(100)});
  l->InsertUnchecked(
      {Value::Int(1002), Value::Int(101), Value::Int(2), Value::Int(200)});
  l->InsertUnchecked(
      {Value::Int(1003), Value::Int(103), Value::Int(7), Value::Int(150)});
  return db;
}

class ExecutorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = FixedDb();
    executor_ = std::make_unique<Executor>(*db_);
  }

  double Scalar(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << sql << ": " << stmt.status();
    auto r = executor_->ExecuteScalar(**stmt);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return r.ok() ? *r : -9999;
  }

  ResultSet Rows(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << sql << ": " << stmt.status();
    auto r = executor_->Execute(**stmt);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, CountStar) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer"), 3);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders"), 3);
}

TEST_F(ExecutorTest, FilterComparisons) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_acctbal > 10"), 2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_acctbal >= 10"), 3);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_acctbal <> 20"), 2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_status = 'f'"), 2);
}

TEST_F(ExecutorTest, AndOrNot) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_nation = 0 AND "
                   "c_acctbal > 10"),
            1);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_nation = 1 OR "
                   "c_acctbal = 30"),
            2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE NOT c_nation = 0"),
            1);
}

TEST_F(ExecutorTest, SumAvgMinMax) {
  EXPECT_EQ(Scalar("SELECT SUM(c_acctbal) FROM customer"), 60);
  EXPECT_EQ(Scalar("SELECT AVG(c_acctbal) FROM customer"), 20);
  EXPECT_EQ(Scalar("SELECT MIN(o_totalprice) FROM orders"), 50);
  EXPECT_EQ(Scalar("SELECT MAX(o_totalprice) FROM orders"), 70);
}

TEST_F(ExecutorTest, SumOfExpression) {
  // 5*100 + 2*200 + 7*150 = 1950
  EXPECT_EQ(Scalar("SELECT SUM(l_quantity * l_price) FROM lineitem"), 1950);
}

TEST_F(ExecutorTest, SumOverEmptyIsZeroViaScalar) {
  // SUM over no rows is NULL; ExecuteScalar maps it to 0.
  EXPECT_EQ(Scalar("SELECT SUM(c_acctbal) FROM customer WHERE c_acctbal > "
                   "1000"),
            0);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_acctbal > 1000"),
            0);
}

TEST_F(ExecutorTest, CommaJoinWithWhereEquiCondition) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c, orders o WHERE "
                   "c.c_custkey = o.o_custkey"),
            3);
  // Customer 3 has no orders; only customers 1 (x2) and 2 (x1) join.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c, orders o WHERE "
                   "c.c_custkey = o.o_custkey AND c.c_nation = 0"),
            2);
}

TEST_F(ExecutorTest, ExplicitJoinOn) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c JOIN orders o ON "
                   "c.c_custkey = o.o_custkey"),
            3);
}

TEST_F(ExecutorTest, ThreeWayJoin) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c, orders o, lineitem l "
                   "WHERE c.c_custkey = o.o_custkey AND o.o_orderkey = "
                   "l.l_orderkey"),
            3);
}

TEST_F(ExecutorTest, LeftJoinPadsWithNulls) {
  ResultSet rs = Rows(
      "SELECT c.c_custkey, o.o_orderkey FROM customer c LEFT JOIN orders o "
      "ON c.c_custkey = o.o_custkey");
  // 3 matched rows + customer 3 padded.
  EXPECT_EQ(rs.NumRows(), 4u);
  int nulls = 0;
  for (const Row& row : rs.rows) {
    if (row[1].is_null()) ++nulls;
  }
  EXPECT_EQ(nulls, 1);
}

TEST_F(ExecutorTest, CrossJoinWhenNoCondition) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c, orders o"), 9);
}

TEST_F(ExecutorTest, NonEquiJoinCondition) {
  // pairs where customer acctbal < order totalprice: all 9 pairs qualify
  // except none excluded (10,20,30 all < 50,60,70) -> 9.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c, orders o WHERE "
                   "c.c_acctbal < o.o_totalprice"),
            9);
}

TEST_F(ExecutorTest, GroupByWithAggregates) {
  ResultSet rs = Rows(
      "SELECT o_custkey, COUNT(*) AS cnt, SUM(o_totalprice) AS s FROM "
      "orders GROUP BY o_custkey");
  ASSERT_EQ(rs.NumRows(), 2u);
  // Sorted by group key: custkey 1 then 2.
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  EXPECT_EQ(rs.rows[0][1], Value::Int(2));
  EXPECT_EQ(rs.rows[0][2], Value::Int(110));
  EXPECT_EQ(rs.rows[1][0], Value::Int(2));
  EXPECT_EQ(rs.rows[1][1], Value::Int(1));
}

TEST_F(ExecutorTest, HavingFiltersGroups) {
  ResultSet rs = Rows(
      "SELECT o_custkey FROM orders GROUP BY o_custkey HAVING COUNT(*) >= "
      "2");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
}

TEST_F(ExecutorTest, HavingOnAlias) {
  ResultSet rs = Rows(
      "SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey "
      "HAVING cnt >= 2");
  ASSERT_EQ(rs.NumRows(), 1u);
}

TEST_F(ExecutorTest, AggregateWithoutGroupByOverEmptyInput) {
  ResultSet rs = Rows("SELECT COUNT(*) FROM orders WHERE o_totalprice > 999");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(0));
}

TEST_F(ExecutorTest, CountDistinct) {
  EXPECT_EQ(Scalar("SELECT COUNT(DISTINCT o_status) FROM orders"), 2);
  EXPECT_EQ(Scalar("SELECT COUNT(o_status) FROM orders"), 3);
}

TEST_F(ExecutorTest, SelectDistinctRows) {
  ResultSet rs = Rows("SELECT DISTINCT o_custkey FROM orders");
  EXPECT_EQ(rs.NumRows(), 2u);
}

TEST_F(ExecutorTest, DerivedTable) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM (SELECT o_custkey, COUNT(*) AS "
                   "cnt FROM orders GROUP BY o_custkey) d WHERE d.cnt >= 2"),
            1);
}

TEST_F(ExecutorTest, WithClause) {
  EXPECT_EQ(Scalar("WITH big AS (SELECT * FROM orders WHERE o_totalprice > "
                   "55) SELECT COUNT(*) FROM big"),
            2);
}

TEST_F(ExecutorTest, NaturalJoinSharesColumns) {
  // NATURAL JOIN on derived tables sharing the o_custkey column name.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM (SELECT o_custkey FROM orders) a "
                   "NATURAL JOIN (SELECT o_custkey FROM orders) b"),
            5);  // custkey1: 2x2=4, custkey2: 1x1=1
}

TEST_F(ExecutorTest, ArithmeticInProjection) {
  ResultSet rs = Rows("SELECT c_acctbal * 2 + 1 FROM customer WHERE "
                      "c_custkey = 1");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(21));
}

TEST_F(ExecutorTest, DivisionIsDouble) {
  ResultSet rs = Rows("SELECT c_acctbal / 4 FROM customer WHERE c_custkey = "
                      "1");
  EXPECT_EQ(rs.rows[0][0], Value::Double(2.5));
}

TEST_F(ExecutorTest, DivisionByZeroErrors) {
  auto stmt = ParseSelect("SELECT c_acctbal / 0 FROM customer");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(executor_->Execute(**stmt).ok());
}

TEST_F(ExecutorTest, CoalesceAndIsNull) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c LEFT JOIN orders o ON "
                   "c.c_custkey = o.o_custkey WHERE o.o_orderkey IS NULL"),
            1);
  EXPECT_EQ(Scalar("SELECT SUM(COALESCE(o.o_totalprice, 0)) FROM customer "
                   "c LEFT JOIN orders o ON c.c_custkey = o.o_custkey"),
            180);
}

TEST_F(ExecutorTest, NullComparisonsFilterRows) {
  // NULL > 5 is unknown -> row dropped, not kept.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c LEFT JOIN orders o ON "
                   "c.c_custkey = o.o_custkey WHERE o.o_totalprice > 0"),
            3);
}

TEST_F(ExecutorTest, InValueList) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_custkey IN (1, "
                   "3, 99)"),
            2);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_custkey NOT IN "
                   "(1, 3)"),
            1);
}

TEST_F(ExecutorTest, BetweenWorks) {
  EXPECT_EQ(
      Scalar("SELECT COUNT(*) FROM orders WHERE o_totalprice BETWEEN 50 AND "
             "60"),
      2);
}

TEST_F(ExecutorTest, UnknownColumnErrors) {
  auto stmt = ParseSelect("SELECT nonexistent FROM customer");
  ASSERT_TRUE(stmt.ok());
  auto r = executor_->Execute(**stmt);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST_F(ExecutorTest, AmbiguousColumnErrors) {
  // o_custkey appears once; c_custkey once; but a self-join duplicates.
  auto stmt = ParseSelect(
      "SELECT o_custkey FROM orders a, orders b WHERE a.o_orderkey = "
      "b.o_orderkey");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(executor_->Execute(**stmt).ok());
}

TEST_F(ExecutorTest, SelfJoinWithAliases) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders a, orders b WHERE "
                   "a.o_custkey = b.o_custkey"),
            5);  // 2x2 + 1
}

TEST_F(ExecutorTest, ScalarWrongShapeErrors) {
  auto stmt = ParseSelect("SELECT o_custkey FROM orders");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(executor_->ExecuteScalar(**stmt).ok());
}

TEST_F(ExecutorTest, ConstantSelectWithoutFrom) {
  ResultSet rs = Rows("SELECT 1 + 2");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
}

}  // namespace
}  // namespace viewrewrite
