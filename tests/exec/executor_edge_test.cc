#include <gtest/gtest.h>

#include "exec/executor.h"
#include "sql/parser.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// Edge-case coverage beyond executor_test: empty inputs, NULL logic in
/// every position, CTE scoping, and join-tree shapes.
class ExecutorEdgeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(testing_support::MakeTestSchema());
    // customer 1 has NULL acctbal; customer 2 normal; no customer 3.
    Table* c = db_->MutableTable("customer");
    c->InsertUnchecked({Value::Int(1), Value::Int(0), Value::Null()});
    c->InsertUnchecked({Value::Int(2), Value::Int(1), Value::Int(20)});
    Table* o = db_->MutableTable("orders");
    o->InsertUnchecked(
        {Value::Int(101), Value::Int(2), Value::String("f"), Value::Int(50)});
    o->InsertUnchecked(
        {Value::Int(102), Value::Int(2), Value::Null(), Value::Int(60)});
    executor_ = std::make_unique<Executor>(*db_);
  }

  double Scalar(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto r = executor_->ExecuteScalar(**stmt);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return r.ok() ? *r : -9999;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorEdgeTest, EmptyTableAggregates) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM lineitem"), 0);
  EXPECT_EQ(Scalar("SELECT SUM(l_price) FROM lineitem"), 0);  // NULL -> 0
}

TEST_F(ExecutorEdgeTest, SumAndAvgOverZeroRowsAreNullThenZero) {
  // Execute preserves SQL semantics: an aggregate over zero input rows is
  // NULL (except COUNT). The scalar wrapper maps that NULL to 0, which is
  // exactly what the synopsis answer path produces for an empty cell
  // selection — the two sides must agree or noisy-vs-true comparisons
  // would diverge on empty inputs.
  for (const char* agg : {"SUM(l_price)", "AVG(l_price)",
                          "VARIANCE(l_price)", "STDDEV(l_price)"}) {
    auto stmt = ParseSelect(std::string("SELECT ") + agg + " FROM lineitem");
    ASSERT_TRUE(stmt.ok());
    auto rs = executor_->Execute(**stmt);
    ASSERT_TRUE(rs.ok()) << rs.status();
    ASSERT_EQ(rs->NumRows(), 1u);
    EXPECT_TRUE(rs->rows[0][0].is_null()) << agg;
    EXPECT_EQ(Scalar(std::string("SELECT ") + agg + " FROM lineitem"), 0)
        << agg;
  }
  // A predicate matching nothing on a non-empty table behaves the same.
  EXPECT_EQ(Scalar("SELECT SUM(o_totalprice) FROM orders WHERE "
                   "o_totalprice > 1000"),
            0);
  EXPECT_EQ(Scalar("SELECT AVG(o_totalprice) FROM orders WHERE "
                   "o_totalprice > 1000"),
            0);
}

TEST_F(ExecutorEdgeTest, VarianceAndStddevArePopulationMoments) {
  // orders o_totalprice {50, 60}: mean 55, population variance 25.
  EXPECT_EQ(Scalar("SELECT VARIANCE(o_totalprice) FROM orders"), 25);
  EXPECT_EQ(Scalar("SELECT STDDEV(o_totalprice) FROM orders"), 5);
  // A single row has zero variance (population, not sample).
  EXPECT_EQ(Scalar("SELECT VARIANCE(o_totalprice) FROM orders WHERE "
                   "o_totalprice = 50"),
            0);
  // NULLs are skipped like in SUM/AVG: only customer 2's 20 remains.
  EXPECT_EQ(Scalar("SELECT VARIANCE(c_acctbal) FROM customer"), 0);
}

TEST_F(ExecutorEdgeTest, JoinAgainstEmptyTable) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders o, lineitem l WHERE "
                   "o.o_orderkey = l.l_orderkey"),
            0);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders o LEFT JOIN lineitem l ON "
                   "o.o_orderkey = l.l_orderkey"),
            2);
}

TEST_F(ExecutorEdgeTest, NullsAndComparisons) {
  // NULL acctbal never satisfies a comparison, in either direction.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_acctbal > 0"), 1);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_acctbal <= 0"), 0);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE c_acctbal = "
                   "c_acctbal"),
            1);  // NULL = NULL is unknown
}

TEST_F(ExecutorEdgeTest, NullsInAggregates) {
  // COUNT(col) skips NULLs; COUNT(*) does not.
  EXPECT_EQ(Scalar("SELECT COUNT(c_acctbal) FROM customer"), 1);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer"), 2);
  EXPECT_EQ(Scalar("SELECT SUM(c_acctbal) FROM customer"), 20);
  EXPECT_EQ(Scalar("SELECT AVG(c_acctbal) FROM customer"), 20);
  EXPECT_EQ(Scalar("SELECT MIN(c_acctbal) FROM customer"), 20);
}

TEST_F(ExecutorEdgeTest, NullEquiJoinKeysNeverMatch) {
  // o_status NULL must not join with anything, even another NULL.
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders a, orders b WHERE "
                   "a.o_status = b.o_status"),
            1);
}

TEST_F(ExecutorEdgeTest, CoalesceChains) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer WHERE "
                   "COALESCE(c_acctbal, 0) = 0"),
            1);
  EXPECT_EQ(Scalar("SELECT SUM(COALESCE(c_acctbal, 5)) FROM customer"), 25);
}

TEST_F(ExecutorEdgeTest, IsNullInGroupedQuery) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_status IS NULL"), 1);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM orders WHERE o_status IS NOT "
                   "NULL"),
            1);
}

TEST_F(ExecutorEdgeTest, CteShadowsBaseTable) {
  // A WITH name equal to a base table takes precedence.
  EXPECT_EQ(Scalar("WITH orders AS (SELECT * FROM customer) SELECT "
                   "COUNT(*) FROM orders"),
            2);
}

TEST_F(ExecutorEdgeTest, LaterCteSeesEarlierOne) {
  EXPECT_EQ(Scalar("WITH a AS (SELECT o_totalprice FROM orders), b AS "
                   "(SELECT * FROM a WHERE o_totalprice > 55) SELECT "
                   "COUNT(*) FROM b"),
            1);
}

TEST_F(ExecutorEdgeTest, CteUsedTwice) {
  EXPECT_EQ(Scalar("WITH t AS (SELECT o_orderkey FROM orders) SELECT "
                   "COUNT(*) FROM t a, t b WHERE a.o_orderkey = "
                   "b.o_orderkey"),
            2);
}

TEST_F(ExecutorEdgeTest, MultiColumnGroupBy) {
  auto stmt = ParseSelect(
      "SELECT o_custkey, o_status, COUNT(*) FROM orders GROUP BY "
      "o_custkey, o_status");
  ASSERT_TRUE(stmt.ok());
  auto rs = executor_->Execute(**stmt);
  ASSERT_TRUE(rs.ok()) << rs.status();
  EXPECT_EQ(rs->NumRows(), 2u);  // ('f') and (NULL) groups for custkey 2
}

TEST_F(ExecutorEdgeTest, NullsFormTheirOwnGroup) {
  auto stmt = ParseSelect(
      "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status");
  ASSERT_TRUE(stmt.ok());
  auto rs = executor_->Execute(**stmt);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->NumRows(), 2u);
  // Deterministic ordering puts the NULL group first (total order).
  EXPECT_TRUE(rs->rows[0][0].is_null());
}

TEST_F(ExecutorEdgeTest, SumDistinct) {
  Table* o = db_->MutableTable("orders");
  o->InsertUnchecked(
      {Value::Int(103), Value::Int(2), Value::String("f"), Value::Int(50)});
  EXPECT_EQ(Scalar("SELECT SUM(o_totalprice) FROM orders"), 160);
  EXPECT_EQ(Scalar("SELECT SUM(DISTINCT o_totalprice) FROM orders"), 110);
}

TEST_F(ExecutorEdgeTest, MixedOnAndWhereConditions) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c JOIN orders o ON "
                   "c.c_custkey = o.o_custkey WHERE o.o_totalprice > 55"),
            1);
}

TEST_F(ExecutorEdgeTest, ThreeLevelDerivedNesting) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM (SELECT * FROM (SELECT "
                   "o_orderkey, o_totalprice FROM orders) a WHERE "
                   "o_totalprice > 55) b"),
            1);
}

TEST_F(ExecutorEdgeTest, HavingWithoutMatchingGroups) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM (SELECT o_custkey FROM orders "
                   "GROUP BY o_custkey HAVING COUNT(*) > 99) d"),
            0);
}

TEST_F(ExecutorEdgeTest, AggregateOfArithmetic) {
  EXPECT_EQ(Scalar("SELECT SUM(o_totalprice * 2 + 1) FROM orders"), 222);
}

TEST_F(ExecutorEdgeTest, ParamInsideDerivedTable) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM (SELECT o_orderkey FROM orders WHERE "
      "o_totalprice > $cutoff) d");
  ASSERT_TRUE(stmt.ok());
  ParamMap params;
  params["cutoff"] = Value::Int(55);
  auto r = executor_->ExecuteScalar(**stmt, params);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, 1);
}

TEST_F(ExecutorEdgeTest, CorrelatedSubqueryAgainstEmptyInner) {
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT "
                   "* FROM lineitem l WHERE l.l_orderkey = c.c_custkey)"),
            0);
  EXPECT_EQ(Scalar("SELECT COUNT(*) FROM customer c WHERE NOT EXISTS "
                   "(SELECT * FROM lineitem l WHERE l.l_orderkey = "
                   "c.c_custkey)"),
            2);
}

}  // namespace
}  // namespace viewrewrite
