#include <gtest/gtest.h>

#include "exec/executor.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

class OrderLimitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(testing_support::MakeTestSchema());
    Table* o = db_->MutableTable("orders");
    o->InsertUnchecked(
        {Value::Int(3), Value::Int(1), Value::String("f"), Value::Int(70)});
    o->InsertUnchecked(
        {Value::Int(1), Value::Int(1), Value::String("o"), Value::Int(50)});
    o->InsertUnchecked(
        {Value::Int(2), Value::Int(2), Value::String("p"), Value::Int(60)});
    executor_ = std::make_unique<Executor>(*db_);
  }

  ResultSet Rows(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto r = executor_->Execute(**stmt);
    EXPECT_TRUE(r.ok()) << sql << ": " << r.status();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(OrderLimitTest, OrderAscendingByName) {
  ResultSet rs = Rows(
      "SELECT o_orderkey, o_totalprice FROM orders ORDER BY o_totalprice");
  ASSERT_EQ(rs.NumRows(), 3u);
  EXPECT_EQ(rs.rows[0][1], Value::Int(50));
  EXPECT_EQ(rs.rows[2][1], Value::Int(70));
}

TEST_F(OrderLimitTest, OrderDescending) {
  ResultSet rs = Rows(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC");
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
  EXPECT_EQ(rs.rows[2][0], Value::Int(1));
}

TEST_F(OrderLimitTest, OrderByAlias) {
  ResultSet rs = Rows(
      "SELECT o_totalprice AS p FROM orders ORDER BY p DESC");
  EXPECT_EQ(rs.rows[0][0], Value::Int(70));
}

TEST_F(OrderLimitTest, OrderByPosition) {
  ResultSet rs = Rows(
      "SELECT o_status, o_totalprice FROM orders ORDER BY 2 DESC");
  EXPECT_EQ(rs.rows[0][1], Value::Int(70));
}

TEST_F(OrderLimitTest, MultiKeyOrdering) {
  Table* o = db_->MutableTable("orders");
  o->InsertUnchecked(
      {Value::Int(4), Value::Int(2), Value::String("f"), Value::Int(50)});
  ResultSet rs = Rows(
      "SELECT o_totalprice, o_orderkey FROM orders ORDER BY o_totalprice, "
      "o_orderkey DESC");
  ASSERT_EQ(rs.NumRows(), 4u);
  // Two rows with price 50: higher orderkey first within the tie.
  EXPECT_EQ(rs.rows[0][0], Value::Int(50));
  EXPECT_EQ(rs.rows[0][1], Value::Int(4));
  EXPECT_EQ(rs.rows[1][1], Value::Int(1));
}

TEST_F(OrderLimitTest, LimitTruncates) {
  ResultSet rs = Rows(
      "SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 2");
  ASSERT_EQ(rs.NumRows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
}

TEST_F(OrderLimitTest, LimitLargerThanResult) {
  ResultSet rs = Rows("SELECT o_orderkey FROM orders LIMIT 99");
  EXPECT_EQ(rs.NumRows(), 3u);
}

TEST_F(OrderLimitTest, LimitZero) {
  ResultSet rs = Rows("SELECT o_orderkey FROM orders LIMIT 0");
  EXPECT_EQ(rs.NumRows(), 0u);
}

TEST_F(OrderLimitTest, OrderByGroupedOutput) {
  ResultSet rs = Rows(
      "SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP BY o_custkey "
      "ORDER BY cnt DESC LIMIT 1");
  ASSERT_EQ(rs.NumRows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));  // customer 1 has 2 orders
}

TEST_F(OrderLimitTest, UnknownOrderColumnErrors) {
  auto stmt = ParseSelect("SELECT o_orderkey FROM orders ORDER BY zzz");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(executor_->Execute(**stmt).ok());
}

TEST_F(OrderLimitTest, PrinterRoundTripsOrderLimit) {
  auto stmt = ParseSelect(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey DESC, o_status "
      "LIMIT 5");
  ASSERT_TRUE(stmt.ok());
  std::string printed = ToSql(**stmt);
  EXPECT_NE(printed.find("ORDER BY o_orderkey DESC, o_status"),
            std::string::npos);
  EXPECT_NE(printed.find("LIMIT 5"), std::string::npos);
  auto again = ParseSelect(printed);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(printed, ToSql(**again));
}

TEST_F(OrderLimitTest, CloneCopiesOrderAndLimit) {
  auto stmt = ParseSelect(
      "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 2");
  ASSERT_TRUE(stmt.ok());
  SelectStmtPtr clone = (*stmt)->Clone();
  EXPECT_EQ(clone->order_by.size(), 1u);
  EXPECT_EQ(clone->limit, 2);
}

TEST_F(OrderLimitTest, NullsSortFirstAscending) {
  Table* o = db_->MutableTable("orders");
  o->InsertUnchecked(
      {Value::Int(5), Value::Int(2), Value::Null(), Value::Null()});
  ResultSet rs = Rows("SELECT o_totalprice FROM orders ORDER BY "
                      "o_totalprice");
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

}  // namespace
}  // namespace viewrewrite
