#include "rewrite/classifier.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

class ClassifierTest : public ::testing::Test {
 protected:
  QueryClass Classify(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto c = viewrewrite::Classify(**stmt, schema_);
    EXPECT_TRUE(c.ok()) << c.status();
    return c.ok() ? *c : QueryClass::kSimple;
  }

  Schema schema_ = testing_support::MakeTestSchema();
};

TEST_F(ClassifierTest, SimpleQueries) {
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM orders WHERE o_totalprice > 5"),
            QueryClass::kSimple);
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM customer c, orders o WHERE "
                     "c.c_custkey = o.o_custkey"),
            QueryClass::kSimple);
}

TEST_F(ClassifierTest, FromDerivedTable) {
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM (SELECT o_custkey FROM orders) "
                     "d"),
            QueryClass::kFromDerivedTable);
}

TEST_F(ClassifierTest, WithDerivedTable) {
  EXPECT_EQ(Classify("WITH t AS (SELECT o_custkey FROM orders) SELECT "
                     "COUNT(*) FROM t"),
            QueryClass::kWithDerivedTable);
}

TEST_F(ClassifierTest, ComparisonCorrelated) {
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM customer c, orders o WHERE "
                     "c.c_custkey = o.o_custkey AND o.o_totalprice > "
                     "(SELECT AVG(o2.o_totalprice) FROM orders o2 WHERE "
                     "o2.o_custkey = c.c_custkey)"),
            QueryClass::kComparisonCorrelated);
}

TEST_F(ClassifierTest, ComparisonNonCorrelated) {
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM orders WHERE o_totalprice > "
                     "(SELECT AVG(o2.o_totalprice) FROM orders o2)"),
            QueryClass::kComparisonNonCorrelated);
}

TEST_F(ClassifierTest, InCorrelatedAndNot) {
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM customer c, orders o WHERE "
                     "c.c_custkey = o.o_custkey AND o.o_status IN (SELECT "
                     "o2.o_status FROM orders o2 WHERE o2.o_custkey = "
                     "c.c_custkey)"),
            QueryClass::kInCorrelated);
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM customer WHERE c_custkey IN "
                     "(SELECT o_custkey FROM orders)"),
            QueryClass::kInNonCorrelated);
}

TEST_F(ClassifierTest, SetCorrelatedAndNot) {
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice "
                     ">= ALL (SELECT l.l_price FROM lineitem l WHERE "
                     "l.l_orderkey = o.o_orderkey)"),
            QueryClass::kSetCorrelated);
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM orders WHERE o_totalprice > ANY "
                     "(SELECT l_price FROM lineitem)"),
            QueryClass::kSetNonCorrelated);
}

TEST_F(ClassifierTest, ExistsCorrelatedAndNot) {
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT "
                     "* FROM orders o WHERE o.o_custkey = c.c_custkey)"),
            QueryClass::kExistsCorrelated);
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM customer WHERE EXISTS (SELECT * "
                     "FROM orders WHERE o_totalprice > 5)"),
            QueryClass::kExistsNonCorrelated);
}

TEST_F(ClassifierTest, NestedTakesPriorityOverDerived) {
  // Both a FROM derived table and a nested predicate: nested wins
  // (pipeline order).
  EXPECT_EQ(Classify("SELECT COUNT(*) FROM (SELECT o_custkey FROM orders) "
                     "d WHERE EXISTS (SELECT * FROM customer WHERE "
                     "c_acctbal > 5)"),
            QueryClass::kExistsNonCorrelated);
}

TEST_F(ClassifierTest, ClassPredicates) {
  EXPECT_TRUE(IsNestedClass(QueryClass::kInCorrelated));
  EXPECT_TRUE(IsNestedClass(QueryClass::kComparisonNonCorrelated));
  EXPECT_FALSE(IsNestedClass(QueryClass::kFromDerivedTable));
  EXPECT_TRUE(IsCorrelatedClass(QueryClass::kExistsCorrelated));
  EXPECT_FALSE(IsCorrelatedClass(QueryClass::kExistsNonCorrelated));
}

TEST_F(ClassifierTest, NamesAreStable) {
  EXPECT_STREQ(QueryClassName(QueryClass::kSimple), "simple");
  EXPECT_STREQ(QueryClassName(QueryClass::kSetCorrelated),
               "set-correlated");
}

}  // namespace
}  // namespace viewrewrite
