#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// Structural assertions on the rewriter output: subqueries gone from
/// WHERE, signatures independent of filter constants, chain links emitted.
class RewriterRulesTest : public ::testing::Test {
 protected:
  RewrittenQuery MustRewrite(const std::string& sql,
                             RewriteOptions options = {}) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << sql << ": " << stmt.status();
    Rewriter rewriter(schema_, options);
    auto rq = rewriter.Rewrite(**stmt);
    EXPECT_TRUE(rq.ok()) << sql << ": " << rq.status();
    return rq.ok() ? std::move(rq).value() : RewrittenQuery{};
  }

  /// Canonical text of the first term's FROM clause — the view signature.
  static std::string FromSignature(const RewrittenQuery& rq) {
    std::string out;
    for (const auto& f : rq.combination.terms.at(0).query->from) {
      out += ToSql(*f) + ";";
    }
    return out;
  }

  static bool WhereHasSubquery(const RewrittenQuery& rq) {
    for (const auto& term : rq.combination.terms) {
      std::string s =
          term.query->where ? ToSql(*term.query->where) : std::string();
      if (s.find("SELECT") != std::string::npos) return true;
    }
    return false;
  }

  Schema schema_ = testing_support::MakeTestSchema();
};

TEST_F(RewriterRulesTest, Rule8WithInlined) {
  RewrittenQuery rq = MustRewrite(
      "WITH t AS (SELECT o_custkey FROM orders) SELECT COUNT(*) FROM t");
  const SelectStmt& q = *rq.combination.terms[0].query;
  EXPECT_TRUE(q.with.empty());
  ASSERT_EQ(q.from.size(), 1u);
  EXPECT_EQ(q.from[0]->kind, TableRefKind::kDerived);
}

TEST_F(RewriterRulesTest, Rule1HoistsUngroupedDerivedFilter) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM (SELECT o_custkey, o_totalprice FROM orders "
      "WHERE o_totalprice > 100) d");
  const SelectStmt& q = *rq.combination.terms[0].query;
  // The filter moved to the main WHERE, referencing the derived output.
  ASSERT_NE(q.where, nullptr);
  EXPECT_NE(ToSql(*q.where).find("d.o_totalprice > 100"), std::string::npos);
  // And the derived body is filter-free.
  EXPECT_EQ(ToSql(*q.from[0]).find("WHERE"), std::string::npos);
}

TEST_F(RewriterRulesTest, Rule2HoistsGroupColumnFilter) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM (SELECT o_custkey, AVG(o_totalprice) AS a FROM "
      "orders WHERE o_custkey > 5 GROUP BY o_custkey) d WHERE d.a > 10");
  const SelectStmt& q = *rq.combination.terms[0].query;
  EXPECT_NE(ToSql(*q.where).find("d.o_custkey > 5"), std::string::npos);
  EXPECT_EQ(ToSql(*q.from[0]).find("WHERE"), std::string::npos);
}

TEST_F(RewriterRulesTest, Rule2DoesNotHoistNonGroupColumnFilter) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM (SELECT o_custkey, AVG(o_totalprice) AS a FROM "
      "orders WHERE o_status = 'f' GROUP BY o_custkey) d");
  const SelectStmt& q = *rq.combination.terms[0].query;
  // Pre-aggregation filter on a non-group column must stay inside.
  EXPECT_NE(ToSql(*q.from[0]).find("o_status = 'f'"), std::string::npos);
}

TEST_F(RewriterRulesTest, Rule3HoistsHaving) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM (SELECT o_custkey, COUNT(*) AS cnt FROM orders "
      "GROUP BY o_custkey HAVING COUNT(*) >= 2) d");
  const SelectStmt& q = *rq.combination.terms[0].query;
  ASSERT_NE(q.where, nullptr);
  EXPECT_NE(ToSql(*q.where).find("d.cnt >= 2"), std::string::npos);
  EXPECT_EQ(ToSql(*q.from[0]).find("HAVING"), std::string::npos);
}

TEST_F(RewriterRulesTest, Rule3HoistsUnprojectedAggregate) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM (SELECT o_custkey FROM orders GROUP BY "
      "o_custkey HAVING SUM(o_totalprice) >= 100) d");
  const SelectStmt& q = *rq.combination.terms[0].query;
  // The SUM had to be added to the derived projection under a new alias.
  EXPECT_NE(ToSql(*q.from[0]).find("SUM(o_totalprice)"), std::string::npos);
  EXPECT_NE(ToSql(*q.where).find(">= 100"), std::string::npos);
}

TEST_F(RewriterRulesTest, Rules45MergeSameStructureSubqueries) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM customer c, (SELECT o_custkey, COUNT(*) AS cnt "
      "FROM orders GROUP BY o_custkey) d1, (SELECT o_custkey, "
      "AVG(o_totalprice) AS a FROM orders GROUP BY o_custkey) d2 WHERE "
      "c.c_custkey = d1.o_custkey AND c.c_custkey = d2.o_custkey AND "
      "d1.cnt >= 2 AND d2.a < 100");
  std::string sig = FromSignature(rq);
  // Exactly one derived table remains after the Rule 4/5 merge.
  size_t first = sig.find("SELECT");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(sig.find("SELECT", first + 1), std::string::npos);
  // Both measures live in the merged body.
  EXPECT_NE(sig.find("COUNT(*)"), std::string::npos);
  EXPECT_NE(sig.find("AVG(o_totalprice)"), std::string::npos);
}

TEST_F(RewriterRulesTest, SignatureInvariantToDerivedFilterConstants) {
  const char* tmpl =
      "SELECT COUNT(*) FROM (SELECT o_custkey, COUNT(*) AS cnt FROM orders "
      "GROUP BY o_custkey HAVING COUNT(*) >= %d) d";
  char q1[256], q2[256];
  snprintf(q1, sizeof(q1), tmpl, 2);
  snprintf(q2, sizeof(q2), tmpl, 7);
  EXPECT_EQ(FromSignature(MustRewrite(q1)), FromSignature(MustRewrite(q2)));
}

TEST_F(RewriterRulesTest, Rule10ComparisonCorrelated) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND o.o_totalprice > (SELECT AVG(o2.o_totalprice) FROM "
      "orders o2 WHERE o2.o_custkey = c.c_custkey)");
  EXPECT_FALSE(WhereHasSubquery(rq));
  std::string sig = FromSignature(rq);
  // Grouped derived table LEFT-JOINed in.
  EXPECT_NE(sig.find("LEFT JOIN"), std::string::npos);
  EXPECT_NE(sig.find("GROUP BY"), std::string::npos);
  EXPECT_NE(sig.find("AVG"), std::string::npos);
}

TEST_F(RewriterRulesTest, Rule10BareCountGetsCoalesce) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM customer c WHERE (SELECT COUNT(*) FROM orders "
      "o WHERE o.o_custkey = c.c_custkey) < 2");
  const SelectStmt& q = *rq.combination.terms[0].query;
  EXPECT_NE(ToSql(*q.where).find("COALESCE"), std::string::npos);
}

TEST_F(RewriterRulesTest, Rules1314ExistsBecomesCountComparison) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM orders "
      "o WHERE o.o_custkey = c.c_custkey)");
  EXPECT_FALSE(WhereHasSubquery(rq));
  const SelectStmt& q = *rq.combination.terms[0].query;
  EXPECT_NE(ToSql(*q.where).find(">= 1"), std::string::npos);

  RewrittenQuery rq2 = MustRewrite(
      "SELECT COUNT(*) FROM customer c WHERE NOT EXISTS (SELECT * FROM "
      "orders o WHERE o.o_custkey = c.c_custkey)");
  const SelectStmt& q2 = *rq2.combination.terms[0].query;
  EXPECT_NE(ToSql(*q2.where).find("< 1"), std::string::npos);
}

TEST_F(RewriterRulesTest, KeyFilterPromotionMovesSubqueryConstant) {
  const char* tmpl =
      "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM orders "
      "o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= %d)";
  char q1[256], q2[256];
  snprintf(q1, sizeof(q1), tmpl, 5);
  snprintf(q2, sizeof(q2), tmpl, 25);
  RewrittenQuery r1 = MustRewrite(q1);
  RewrittenQuery r2 = MustRewrite(q2);
  // Same view structure regardless of the subquery constant — the paper's
  // headline property.
  EXPECT_EQ(FromSignature(r1), FromSignature(r2));
  // The constant now sits in the main WHERE, on the outer column.
  EXPECT_NE(ToSql(*r1.combination.terms[0].query->where)
                .find("c.c_custkey >= 5"),
            std::string::npos);
}

TEST_F(RewriterRulesTest, PromotionDisabledKeepsConstantInView) {
  RewriteOptions opts;
  opts.enable_key_filter_promotion = false;
  const char* tmpl =
      "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM orders "
      "o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= %d)";
  char q1[256], q2[256];
  snprintf(q1, sizeof(q1), tmpl, 5);
  snprintf(q2, sizeof(q2), tmpl, 25);
  EXPECT_NE(FromSignature(MustRewrite(q1, opts)),
            FromSignature(MustRewrite(q2, opts)));
}

TEST_F(RewriterRulesTest, Rule11InCorrelated) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND o.o_status IN (SELECT o2.o_status FROM orders o2 "
      "WHERE o2.o_custkey = c.c_custkey)");
  EXPECT_FALSE(WhereHasSubquery(rq));
  EXPECT_NE(FromSignature(rq).find("matched"), std::string::npos);
}

TEST_F(RewriterRulesTest, Rule15NonCorrelatedComparisonBecomesChain) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM orders WHERE o_totalprice > (SELECT "
      "AVG(o2.o_totalprice) FROM orders o2)");
  ASSERT_EQ(rq.chain.size(), 1u);
  EXPECT_EQ(rq.chain[0].var, "v0");
  const SelectStmt& q = *rq.combination.terms[0].query;
  EXPECT_NE(ToSql(*q.where).find("$v0"), std::string::npos);
}

TEST_F(RewriterRulesTest, Rule16UniqueKeyInFlattensAndHoistsFilter) {
  const char* tmpl =
      "SELECT COUNT(*) FROM orders o WHERE o.o_custkey IN (SELECT "
      "c.c_custkey FROM customer c WHERE c.c_nation = %d)";
  char q1[256], q2[256];
  snprintf(q1, sizeof(q1), tmpl, 1);
  snprintf(q2, sizeof(q2), tmpl, 3);
  RewrittenQuery r1 = MustRewrite(q1);
  RewrittenQuery r2 = MustRewrite(q2);
  EXPECT_EQ(FromSignature(r1), FromSignature(r2));
  EXPECT_NE(ToSql(*r1.combination.terms[0].query->where).find("c_nation"),
            std::string::npos);
}

TEST_F(RewriterRulesTest, Rules1920NonCorrelatedExists) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM customer WHERE EXISTS (SELECT * FROM orders "
      "WHERE o_totalprice > 100)");
  ASSERT_EQ(rq.chain.size(), 1u);
  const SelectStmt& q = *rq.combination.terms[0].query;
  EXPECT_NE(ToSql(*q.where).find("$v0 >= 1"), std::string::npos);
}

TEST_F(RewriterRulesTest, Rule12SetCorrelatedViaTable1) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= ALL (SELECT "
      "l.l_price FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)");
  EXPECT_FALSE(WhereHasSubquery(rq));
  // >= ALL -> >= MAX with a -infinity COALESCE sentinel.
  std::string sig = FromSignature(rq);
  EXPECT_NE(sig.find("MAX"), std::string::npos);
  EXPECT_NE(ToSql(*rq.combination.terms[0].query->where).find("COALESCE"),
            std::string::npos);
}

TEST_F(RewriterRulesTest, Rule18SetNonCorrelatedBecomesChain) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM orders WHERE o_totalprice > ALL (SELECT "
      "l_price FROM lineitem)");
  ASSERT_EQ(rq.chain.size(), 1u);
  // The chain link computes MAX (Table 1: > ALL -> > MAX).
  EXPECT_NE(ToSql(*rq.chain[0].query).find("MAX"), std::string::npos);
}

TEST_F(RewriterRulesTest, Table1UnsupportedConversionsRejected) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM orders WHERE o_totalprice = ALL (SELECT "
      "l_price FROM lineitem)");
  ASSERT_TRUE(stmt.ok());
  Rewriter rewriter(schema_);
  EXPECT_FALSE(rewriter.Rewrite(**stmt).ok());

  stmt = ParseSelect(
      "SELECT COUNT(*) FROM orders WHERE o_totalprice <> ANY (SELECT "
      "l_price FROM lineitem)");
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(rewriter.Rewrite(**stmt).ok());
}

TEST_F(RewriterRulesTest, Rules67SplitOrIntoCombination) {
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM orders WHERE o_status = 'f' OR o_totalprice > "
      "100");
  ASSERT_EQ(rq.combination.terms.size(), 3u);
  double coeff_sum = 0;
  for (const auto& t : rq.combination.terms) coeff_sum += t.coeff;
  EXPECT_EQ(coeff_sum, 1.0);
}

TEST_F(RewriterRulesTest, OrSplitDisabledKeepsSingleTerm) {
  RewriteOptions opts;
  opts.enable_or_split = false;
  RewrittenQuery rq = MustRewrite(
      "SELECT COUNT(*) FROM orders WHERE o_status = 'f' OR o_totalprice > "
      "100",
      opts);
  EXPECT_EQ(rq.combination.terms.size(), 1u);
}

TEST_F(RewriterRulesTest, CanonicalizationNormalizesTableOrder) {
  RewrittenQuery a = MustRewrite(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey");
  RewrittenQuery b = MustRewrite(
      "SELECT COUNT(*) FROM orders o, customer c WHERE o.o_custkey = "
      "c.c_custkey");
  EXPECT_EQ(FromSignature(a), FromSignature(b));
}

TEST_F(RewriterRulesTest, MainFilterConstantsDoNotChangeSignature) {
  RewrittenQuery a = MustRewrite(
      "SELECT COUNT(*) FROM orders WHERE o_totalprice > 10");
  RewrittenQuery b = MustRewrite(
      "SELECT COUNT(*) FROM orders WHERE o_totalprice > 200 AND o_status = "
      "'f'");
  EXPECT_EQ(FromSignature(a), FromSignature(b));
}

}  // namespace
}  // namespace viewrewrite
