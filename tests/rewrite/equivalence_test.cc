#include <gtest/gtest.h>

#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// The paper's correctness property: every rewrite rule is an equivalence.
/// For each query in the corpus, execute the original (naive subquery
/// evaluation) and the rewritten form (chain + combination over the
/// canonicalized join tree) on several random database instances and
/// require identical answers.
class EquivalenceTest : public ::testing::TestWithParam<const char*> {};

TEST_P(EquivalenceTest, OriginalEqualsRewrittenOnRandomInstances) {
  const std::string sql = GetParam();
  Schema schema = testing_support::MakeTestSchema();
  Rewriter rewriter(schema);

  auto stmt = ParseSelect(sql);
  ASSERT_TRUE(stmt.ok()) << sql << ": " << stmt.status();
  auto rewritten = rewriter.Rewrite(**stmt);
  ASSERT_TRUE(rewritten.ok()) << sql << ": " << rewritten.status();

  for (uint64_t seed = 1; seed <= 8; ++seed) {
    auto db = testing_support::MakeTestDatabase(seed, 25);
    Executor executor(*db);
    auto original = executor.ExecuteScalar(**stmt);
    ASSERT_TRUE(original.ok()) << sql << " (seed " << seed
                               << "): " << original.status();
    auto via_rewrite = executor.ExecuteRewritten(*rewritten);
    ASSERT_TRUE(via_rewrite.ok())
        << ToSql(*rewritten) << " (seed " << seed
        << "): " << via_rewrite.status();
    EXPECT_DOUBLE_EQ(*original, *via_rewrite)
        << "seed " << seed << "\noriginal:  " << sql
        << "\nrewritten: " << ToSql(*rewritten);
  }
}

INSTANTIATE_TEST_SUITE_P(
    DerivedTableRules, EquivalenceTest,
    ::testing::Values(
        // Rule 1: ungrouped derived filter.
        "SELECT COUNT(*) FROM (SELECT o_custkey, o_totalprice FROM orders "
        "WHERE o_totalprice > 100) d",
        // Rule 2: filter on the grouping column.
        "SELECT COUNT(*) FROM (SELECT o_custkey, AVG(o_totalprice) AS a "
        "FROM orders WHERE o_custkey > 5 GROUP BY o_custkey) d WHERE d.a > "
        "100",
        // Rule 2 negative case: non-group filter stays inside.
        "SELECT COUNT(*) FROM (SELECT o_custkey, AVG(o_totalprice) AS a "
        "FROM orders WHERE o_status = 'f' GROUP BY o_custkey) d WHERE d.a "
        "> 50",
        // Rule 3: HAVING.
        "SELECT COUNT(*) FROM (SELECT o_custkey, COUNT(*) AS cnt FROM "
        "orders GROUP BY o_custkey HAVING COUNT(*) >= 2) d",
        // Rule 3 with WHERE + HAVING combined.
        "SELECT COUNT(*) FROM (SELECT o_custkey, COUNT(*) AS cnt FROM "
        "orders WHERE o_custkey > 3 GROUP BY o_custkey HAVING COUNT(*) >= "
        "2) d WHERE d.cnt < 5",
        // Rules 4/5: merged subqueries with a join.
        "SELECT COUNT(*) FROM customer c, (SELECT o_custkey, COUNT(*) AS "
        "cnt FROM orders GROUP BY o_custkey) d1, (SELECT o_custkey, "
        "AVG(o_totalprice) AS a FROM orders GROUP BY o_custkey) d2 WHERE "
        "c.c_custkey = d1.o_custkey AND c.c_custkey = d2.o_custkey AND "
        "d1.cnt >= 2 AND d2.a < 150",
        // Rule 8: WITH.
        "WITH t AS (SELECT o_custkey, SUM(o_totalprice) AS s FROM orders "
        "GROUP BY o_custkey HAVING SUM(o_totalprice) >= 100) SELECT "
        "COUNT(*) FROM customer c, t WHERE c.c_custkey = t.o_custkey AND "
        "c.c_nation = 1"));

INSTANTIATE_TEST_SUITE_P(
    CorrelatedRules, EquivalenceTest,
    ::testing::Values(
        // Rule 10: comparison-correlated (AVG).
        "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
        "o.o_custkey AND o.o_totalprice > (SELECT AVG(o2.o_totalprice) "
        "FROM orders o2 WHERE o2.o_custkey = c.c_custkey)",
        // Rule 10 rewrite trap: bare COUNT compared against 0 keeps
        // customers with no orders.
        "SELECT COUNT(*) FROM customer c WHERE (SELECT COUNT(*) FROM "
        "orders o WHERE o.o_custkey = c.c_custkey) = 0",
        "SELECT COUNT(*) FROM customer c WHERE (SELECT COUNT(*) FROM "
        "orders o WHERE o.o_custkey = c.c_custkey) < 3",
        // Correlated scalar with an inner non-key filter.
        "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
        "o.o_custkey AND o.o_totalprice > (SELECT AVG(o2.o_totalprice) "
        "FROM orders o2 WHERE o2.o_custkey = c.c_custkey AND o2.o_status = "
        "'f')",
        // Key-filter promotion: inner filter on the correlation key.
        "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM "
        "orders o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= 10)",
        "SELECT COUNT(*) FROM customer c WHERE NOT EXISTS (SELECT * FROM "
        "orders o WHERE o.o_custkey = c.c_custkey AND o.o_custkey < 15)",
        // Promoted key filter on a correlated scalar (bare COUNT).
        "SELECT COUNT(*) FROM customer c WHERE (SELECT COUNT(*) FROM "
        "orders o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= 12) "
        "< 2",
        // Rules 13/14: EXISTS / NOT EXISTS.
        "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM "
        "orders o WHERE o.o_custkey = c.c_custkey)",
        "SELECT COUNT(*) FROM customer c WHERE NOT EXISTS (SELECT * FROM "
        "orders o WHERE o.o_custkey = c.c_custkey)",
        "SELECT COUNT(*) FROM customer c WHERE c.c_nation = 0 AND EXISTS "
        "(SELECT * FROM orders o WHERE o.o_custkey = c.c_custkey AND "
        "o.o_status = 'f')",
        // Rule 11: IN-correlated.
        "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
        "o.o_custkey AND o.o_status IN (SELECT o2.o_status FROM orders o2 "
        "WHERE o2.o_custkey = c.c_custkey AND o2.o_totalprice < 150)",
        // Rule 12 + Table 1: every supported quantifier/comparison combo.
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= ALL (SELECT "
        "l.l_price FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice < ANY (SELECT "
        "l.l_price FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice <= ANY (SELECT "
        "l.l_price FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice > ANY (SELECT "
        "l.l_price FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= ANY (SELECT "
        "l.l_price FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice < ALL (SELECT "
        "l.l_price FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice <= ALL (SELECT "
        "l.l_price FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice > ALL (SELECT "
        "l.l_price FROM lineitem l WHERE l.l_orderkey = o.o_orderkey)",
        "SELECT COUNT(*) FROM orders o WHERE o.o_status = ANY (SELECT "
        "o2.o_status FROM orders o2 WHERE o2.o_custkey = o.o_custkey)",
        "SELECT COUNT(*) FROM orders o WHERE o.o_orderkey <> ALL (SELECT "
        "l.l_orderkey FROM lineitem l WHERE l.l_orderkey = o.o_orderkey AND "
        "l.l_quantity > 30)"));

INSTANTIATE_TEST_SUITE_P(
    NonCorrelatedRules, EquivalenceTest,
    ::testing::Values(
        // Rule 15: comparison.
        "SELECT COUNT(*) FROM orders WHERE o_totalprice > (SELECT "
        "AVG(o2.o_totalprice) FROM orders o2)",
        // Rule 15 with arithmetic around the subquery.
        "SELECT COUNT(*) FROM orders WHERE o_totalprice > 0.5 * (SELECT "
        "AVG(o2.o_totalprice) FROM orders o2 WHERE o2.o_status = 'f')",
        // Rules 16/17: IN over a unique key with a filter.
        "SELECT COUNT(*) FROM orders o WHERE o.o_custkey IN (SELECT "
        "c.c_custkey FROM customer c WHERE c.c_nation = 1)",
        "SELECT COUNT(*) FROM orders o WHERE o.o_custkey NOT IN (SELECT "
        "c.c_custkey FROM customer c WHERE c.c_acctbal > 30)",
        // Rule 17: IN over a non-unique column (grouping dedup).
        "SELECT COUNT(*) FROM customer WHERE c_custkey IN (SELECT "
        "o_custkey FROM orders WHERE o_totalprice > 100)",
        // Rule 18: set non-correlated.
        "SELECT COUNT(*) FROM orders WHERE o_totalprice > ALL (SELECT "
        "l_price FROM lineitem WHERE l_quantity > 30)",
        "SELECT COUNT(*) FROM orders WHERE o_totalprice <= ANY (SELECT "
        "l_price FROM lineitem)",
        // Rules 19/20: EXISTS / NOT EXISTS non-correlated.
        "SELECT COUNT(*) FROM customer WHERE EXISTS (SELECT * FROM orders "
        "WHERE o_totalprice > 200)",
        "SELECT COUNT(*) FROM customer WHERE NOT EXISTS (SELECT * FROM "
        "orders WHERE o_totalprice > 250)",
        // Nested non-correlated chain (two levels).
        "SELECT COUNT(*) FROM customer WHERE c_custkey IN (SELECT "
        "o_custkey FROM orders WHERE o_totalprice = (SELECT "
        "MAX(o2.o_totalprice) FROM orders o2))"));

INSTANTIATE_TEST_SUITE_P(
    OrSplitting, EquivalenceTest,
    ::testing::Values(
        "SELECT COUNT(*) FROM orders WHERE o_status = 'f' OR o_totalprice "
        "> 150",
        "SELECT COUNT(*) FROM orders WHERE (o_status = 'f' OR o_status = "
        "'o') AND o_totalprice > 100",
        "SELECT COUNT(*) FROM orders WHERE o_status = 'f' OR o_totalprice "
        "> 150 OR o_custkey < 5",
        "SELECT COUNT(*) FROM orders WHERE NOT (o_status = 'f' AND "
        "o_totalprice > 100)",
        // OR combined with a subquery predicate.
        "SELECT COUNT(*) FROM customer c WHERE c.c_nation = 2 OR EXISTS "
        "(SELECT * FROM orders o WHERE o.o_custkey = c.c_custkey)"));

INSTANTIATE_TEST_SUITE_P(
    SumAggregates, EquivalenceTest,
    ::testing::Values(
        "SELECT SUM(o_totalprice) FROM orders WHERE o_status = 'f' OR "
        "o_totalprice > 150",
        "SELECT SUM(l_quantity * l_price) FROM lineitem WHERE l_quantity "
        "> 10",
        "SELECT SUM(c_acctbal) FROM customer c WHERE EXISTS (SELECT * "
        "FROM orders o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= "
        "8)",
        "SELECT SUM(o_totalprice) FROM customer c, orders o WHERE "
        "c.c_custkey = o.o_custkey AND o.o_totalprice > (SELECT "
        "AVG(o2.o_totalprice) FROM orders o2 WHERE o2.o_custkey = "
        "c.c_custkey)"));

}  // namespace
}  // namespace viewrewrite
