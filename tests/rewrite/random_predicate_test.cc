#include <gtest/gtest.h>

#include <string>

#include "common/random.h"
#include "exec/executor.h"
#include "rewrite/dnf.h"
#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// Fuzz-style property coverage: random boolean predicate trees over the
/// orders relation, checked through three independent pipelines that must
/// all agree with direct execution:
///   1. print -> parse -> execute          (printer fidelity)
///   2. full rewrite -> execute            (Rules 6/7 splitting)
///   3. NOT-normalization -> execute       (PushNotInward)
class RandomPredicateTest : public ::testing::TestWithParam<int> {
 protected:
  /// Builds a random predicate of the given depth over orders columns.
  static std::string RandomPredicate(Random* rng, int depth) {
    if (depth == 0 || rng->Bernoulli(0.3)) {
      switch (rng->UniformInt(0, 3)) {
        case 0:
          return "o_totalprice >= " +
                 std::to_string(rng->UniformInt(0, 16) * 16);
        case 1:
          return "o_totalprice < " +
                 std::to_string(rng->UniformInt(0, 16) * 16);
        case 2: {
          const char* statuses[] = {"'f'", "'o'", "'p'"};
          return std::string("o_status = ") +
                 statuses[rng->UniformInt(0, 2)];
        }
        default:
          return "o_custkey <= " + std::to_string(rng->UniformInt(0, 30));
      }
    }
    std::string left = RandomPredicate(rng, depth - 1);
    std::string right = RandomPredicate(rng, depth - 1);
    switch (rng->UniformInt(0, 2)) {
      case 0:
        return "(" + left + " AND " + right + ")";
      case 1:
        return "(" + left + " OR " + right + ")";
      default:
        return "(NOT " + left + ")";
    }
  }
};

TEST_P(RandomPredicateTest, PipelinesAgreeWithDirectExecution) {
  Random rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  auto db = testing_support::MakeTestDatabase(
      static_cast<uint64_t>(GetParam()), 25);
  Executor executor(*db);
  Rewriter rewriter(db->schema());

  for (int trial = 0; trial < 25; ++trial) {
    std::string predicate = RandomPredicate(&rng, 3);
    std::string sql =
        "SELECT COUNT(*) FROM orders WHERE " + predicate;
    auto stmt = ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << sql << "\n" << stmt.status();

    auto direct = executor.ExecuteScalar(**stmt);
    ASSERT_TRUE(direct.ok()) << sql << "\n" << direct.status();

    // 1. Printer fidelity.
    auto reparsed = ParseSelect(ToSql(**stmt));
    ASSERT_TRUE(reparsed.ok());
    auto via_print = executor.ExecuteScalar(**reparsed);
    ASSERT_TRUE(via_print.ok());
    EXPECT_DOUBLE_EQ(*direct, *via_print) << sql;

    // 2. Rules 6/7: the signed combination must reproduce the count.
    auto rq = rewriter.Rewrite(**stmt);
    if (rq.ok()) {
      auto via_rewrite = executor.ExecuteRewritten(*rq);
      ASSERT_TRUE(via_rewrite.ok()) << ToSql(*rq);
      EXPECT_DOUBLE_EQ(*direct, *via_rewrite)
          << sql << "\nrewritten: " << ToSql(*rq);
    } else {
      // Only the DNF-size cap may reject a random predicate.
      EXPECT_EQ(rq.status().code(), StatusCode::kRewriteError) << sql;
    }

    // 3. NOT-normalization is an equivalence on its own.
    ExprPtr normalized = PushNotInward(*(*stmt)->where);
    SelectStmtPtr norm_stmt = (*stmt)->Clone();
    norm_stmt->where = std::move(normalized);
    auto via_norm = executor.ExecuteScalar(*norm_stmt);
    ASSERT_TRUE(via_norm.ok());
    EXPECT_DOUBLE_EQ(*direct, *via_norm)
        << sql << "\nnormalized: " << ToSql(*norm_stmt->where);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomPredicateTest,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace viewrewrite
