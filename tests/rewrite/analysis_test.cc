#include "rewrite/analysis.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

class AnalysisTest : public ::testing::Test {
 protected:
  SelectStmtPtr Parse(const std::string& sql) {
    auto r = ParseSelect(sql);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? std::move(r).value() : nullptr;
  }

  Schema schema_ = testing_support::MakeTestSchema();
};

TEST_F(AnalysisTest, VisibleColumnsFromBaseTables) {
  auto stmt = Parse("SELECT * FROM customer c, orders");
  auto cols = VisibleColumns(*stmt, schema_);
  ASSERT_TRUE(cols.ok());
  // 3 customer columns under binding "c", 4 orders columns under "orders".
  EXPECT_EQ(cols->size(), 7u);
  EXPECT_EQ((*cols)[0].first, "c");
  EXPECT_EQ((*cols)[3].first, "orders");
}

TEST_F(AnalysisTest, VisibleColumnsFromDerivedTable) {
  auto stmt = Parse(
      "SELECT * FROM (SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP "
      "BY o_custkey) d");
  auto cols = VisibleColumns(*stmt, schema_);
  ASSERT_TRUE(cols.ok());
  ASSERT_EQ(cols->size(), 2u);
  EXPECT_EQ((*cols)[0], (std::pair<std::string, std::string>{"d",
                                                             "o_custkey"}));
  EXPECT_EQ((*cols)[1].second, "cnt");
}

TEST_F(AnalysisTest, VisibleColumnsExpandStar) {
  auto stmt = Parse("SELECT * FROM (SELECT * FROM orders) d");
  auto cols = VisibleColumns(*stmt, schema_);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->size(), 4u);
  for (const auto& [binding, _] : *cols) EXPECT_EQ(binding, "d");
}

TEST_F(AnalysisTest, VisibleColumnsThroughJoins) {
  auto stmt = Parse(
      "SELECT * FROM customer c JOIN orders o ON c.c_custkey = o.o_custkey");
  auto cols = VisibleColumns(*stmt, schema_);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->size(), 7u);
}

TEST_F(AnalysisTest, UnknownTableErrors) {
  auto stmt = Parse("SELECT * FROM nonexistent");
  EXPECT_FALSE(VisibleColumns(*stmt, schema_).ok());
}

TEST_F(AnalysisTest, ResolverQualifiedAndBare) {
  ColumnResolver resolver({{"o", "o_custkey"}, {"c", "c_acctbal"}});
  ColumnRefExpr qualified("o", "o_custkey");
  ColumnRefExpr wrong_table("c", "o_custkey");
  ColumnRefExpr bare("", "c_acctbal");
  ColumnRefExpr missing("", "zzz");
  EXPECT_TRUE(resolver.Resolves(qualified));
  EXPECT_FALSE(resolver.Resolves(wrong_table));
  EXPECT_TRUE(resolver.Resolves(bare));
  EXPECT_FALSE(resolver.Resolves(missing));
}

TEST_F(AnalysisTest, HasOuterRefsDetectsCorrelation) {
  auto stmt = Parse("SELECT * FROM orders o WHERE o.o_custkey = c.c_custkey");
  auto cols = VisibleColumns(*stmt, schema_);
  ASSERT_TRUE(cols.ok());
  ColumnResolver local(std::move(cols).value());
  EXPECT_TRUE(HasOuterRefs(*stmt->where, local));

  auto plain = Parse("SELECT * FROM orders o WHERE o.o_totalprice > 5");
  auto cols2 = VisibleColumns(*plain, schema_);
  ColumnResolver local2(std::move(cols2).value());
  EXPECT_FALSE(HasOuterRefs(*plain->where, local2));
}

TEST_F(AnalysisTest, ContainsSubqueryAllForms) {
  EXPECT_TRUE(ContainsSubquery(
      Parse("SELECT * FROM t WHERE a > (SELECT MAX(b) FROM u)")
          ->where.get()));
  EXPECT_TRUE(ContainsSubquery(
      Parse("SELECT * FROM t WHERE a IN (SELECT b FROM u)")->where.get()));
  EXPECT_TRUE(ContainsSubquery(
      Parse("SELECT * FROM t WHERE EXISTS (SELECT * FROM u)")->where.get()));
  EXPECT_TRUE(ContainsSubquery(
      Parse("SELECT * FROM t WHERE a > ALL (SELECT b FROM u)")
          ->where.get()));
  EXPECT_FALSE(ContainsSubquery(
      Parse("SELECT * FROM t WHERE a IN (1, 2)")->where.get()));
  EXPECT_FALSE(
      ContainsSubquery(Parse("SELECT * FROM t WHERE a > 1")->where.get()));
  // Nested inside AND.
  EXPECT_TRUE(ContainsSubquery(
      Parse("SELECT * FROM t WHERE a = 1 AND EXISTS (SELECT * FROM u)")
          ->where.get()));
}

TEST_F(AnalysisTest, ExtractCorrelationSplitsConjuncts) {
  auto outer_stmt = Parse("SELECT * FROM customer c");
  auto outer_cols = VisibleColumns(*outer_stmt, schema_);
  ASSERT_TRUE(outer_cols.ok());
  ColumnResolver outer(std::move(outer_cols).value());

  auto sub = Parse(
      "SELECT * FROM orders o WHERE o.o_custkey = c.c_custkey AND "
      "o.o_totalprice > 100");
  auto pairs = ExtractCorrelation(sub.get(), schema_, outer);
  ASSERT_TRUE(pairs.ok()) << pairs.status();
  ASSERT_EQ(pairs->size(), 1u);
  EXPECT_EQ((*pairs)[0].local_table, "o");
  EXPECT_EQ((*pairs)[0].local_column, "o_custkey");
  EXPECT_EQ((*pairs)[0].outer_table, "c");
  EXPECT_EQ((*pairs)[0].outer_column, "c_custkey");
  // The local conjunct stays behind.
  ASSERT_NE(sub->where, nullptr);
  EXPECT_EQ(ToSql(*sub->where), "(o.o_totalprice > 100)");
}

TEST_F(AnalysisTest, ExtractCorrelationMirroredEquality) {
  auto outer_stmt = Parse("SELECT * FROM customer c");
  ColumnResolver outer(
      std::move(VisibleColumns(*outer_stmt, schema_)).value());
  auto sub =
      Parse("SELECT * FROM orders o WHERE c.c_custkey = o.o_custkey");
  auto pairs = ExtractCorrelation(sub.get(), schema_, outer);
  ASSERT_TRUE(pairs.ok());
  EXPECT_EQ((*pairs)[0].local_column, "o_custkey");
  EXPECT_EQ(sub->where, nullptr);
}

TEST_F(AnalysisTest, ExtractCorrelationRejectsNonEquality) {
  auto outer_stmt = Parse("SELECT * FROM customer c");
  ColumnResolver outer(
      std::move(VisibleColumns(*outer_stmt, schema_)).value());
  auto sub =
      Parse("SELECT * FROM orders o WHERE o.o_custkey > c.c_custkey");
  auto pairs = ExtractCorrelation(sub.get(), schema_, outer);
  EXPECT_FALSE(pairs.ok());
  EXPECT_EQ(pairs.status().code(), StatusCode::kRewriteError);
}

TEST_F(AnalysisTest, ExtractCorrelationRequiresCorrelation) {
  auto outer_stmt = Parse("SELECT * FROM customer c");
  ColumnResolver outer(
      std::move(VisibleColumns(*outer_stmt, schema_)).value());
  auto sub = Parse("SELECT * FROM orders o WHERE o.o_totalprice > 5");
  EXPECT_FALSE(ExtractCorrelation(sub.get(), schema_, outer).ok());
}

TEST_F(AnalysisTest, TableRefColumnsSingleRef) {
  auto stmt = Parse("SELECT * FROM customer c JOIN orders o ON c.c_custkey "
                    "= o.o_custkey");
  auto cols = TableRefColumns(*stmt->from[0], schema_);
  ASSERT_TRUE(cols.ok());
  EXPECT_EQ(cols->size(), 7u);
}

TEST_F(AnalysisTest, CollectColumnRefsShallowSkipsSubqueries) {
  auto stmt = Parse(
      "SELECT * FROM t WHERE a = 1 AND EXISTS (SELECT * FROM u WHERE b = "
      "2) AND c < 3");
  std::vector<const ColumnRefExpr*> refs;
  CollectColumnRefsShallow(stmt->where.get(), &refs);
  ASSERT_EQ(refs.size(), 2u);  // a and c; b is inside the subquery
  EXPECT_EQ(refs[0]->column, "a");
  EXPECT_EQ(refs[1]->column, "c");
}

}  // namespace
}  // namespace viewrewrite
