#include <gtest/gtest.h>

#include "datagen/census.h"
#include "datagen/tpch.h"
#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/workload.h"

namespace viewrewrite {
namespace {

/// Integration-level equivalence property: for samples of every workload
/// family, the generated SQL must (a) parse, (b) rewrite, and (c) produce
/// the same exact answer through the naive executor and through the
/// rewritten chain/combination form on a small TPC-H instance.
class WorkloadEquivalenceTest : public ::testing::TestWithParam<int> {
 protected:
  static void SetUpTestSuite() {
    TpchConfig config;
    config.customers = 120;
    config.parts = 80;
    config.suppliers = 20;
    tpch_ = GenerateTpch(config).release();
    CensusConfig census_config;
    census_config.households = 150;
    census_ = GenerateCensus(census_config).release();
  }
  static void TearDownTestSuite() {
    delete tpch_;
    delete census_;
    tpch_ = nullptr;
    census_ = nullptr;
  }

  static Database* tpch_;
  static Database* census_;
};

Database* WorkloadEquivalenceTest::tpch_ = nullptr;
Database* WorkloadEquivalenceTest::census_ = nullptr;

TEST_P(WorkloadEquivalenceTest, SampleMatchesExecutor) {
  const int w = GetParam();
  const Database& db =
      WorkloadGenerator::IsCensus(w) ? *census_ : *tpch_;
  WorkloadGenerator gen(/*scale=*/1, /*seed=*/4096 + w);
  auto queries = gen.Generate(w);
  ASSERT_TRUE(queries.ok()) << queries.status();

  Rewriter rewriter(db.schema());
  Executor executor(db);
  const size_t sample = std::min<size_t>(40, queries->size());
  for (size_t i = 0; i < sample; ++i) {
    const std::string& sql = (*queries)[i].sql;
    auto stmt = ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << sql << "\n" << stmt.status();
    auto rq = rewriter.Rewrite(**stmt);
    ASSERT_TRUE(rq.ok()) << sql << "\n" << rq.status();

    auto original = executor.ExecuteScalar(**stmt);
    ASSERT_TRUE(original.ok()) << sql << "\n" << original.status();
    auto rewritten = executor.ExecuteRewritten(*rq);
    ASSERT_TRUE(rewritten.ok()) << ToSql(*rq) << "\n" << rewritten.status();
    EXPECT_NEAR(*original, *rewritten, 1e-6)
        << "W" << w << "[" << i << "]\noriginal:  " << sql
        << "\nrewritten: " << ToSql(*rq);
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, WorkloadEquivalenceTest,
                         ::testing::Values(1, 6, 11, 16, 21, 26, 31),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "W" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace viewrewrite
