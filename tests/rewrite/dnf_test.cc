#include "rewrite/dnf.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"

namespace viewrewrite {
namespace {

ExprPtr ParseWhere(const std::string& predicate) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE " + predicate);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  return std::move((*stmt)->where);
}

TEST(PushNotInwardTest, NegatesComparisons) {
  ExprPtr e = ParseWhere("NOT a < 3");
  EXPECT_EQ(ToSql(*PushNotInward(*e)), "(a >= 3)");
  e = ParseWhere("NOT a = 3");
  EXPECT_EQ(ToSql(*PushNotInward(*e)), "(a <> 3)");
}

TEST(PushNotInwardTest, DeMorgan) {
  ExprPtr e = ParseWhere("NOT (a = 1 AND b = 2)");
  EXPECT_EQ(ToSql(*PushNotInward(*e)), "((a <> 1) OR (b <> 2))");
  e = ParseWhere("NOT (a = 1 OR b = 2)");
  EXPECT_EQ(ToSql(*PushNotInward(*e)), "((a <> 1) AND (b <> 2))");
}

TEST(PushNotInwardTest, DoubleNegationCancels) {
  ExprPtr e = ParseWhere("NOT (NOT a = 1)");
  EXPECT_EQ(ToSql(*PushNotInward(*e)), "(a = 1)");
}

TEST(PushNotInwardTest, FlipsNullTests) {
  ExprPtr e = ParseWhere("NOT a IS NULL");
  EXPECT_EQ(ToSql(*PushNotInward(*e)), "ISNOTNULL(a)");
}

TEST(ToDnfTest, PureConjunctionIsOneDisjunct) {
  ExprPtr e = ParseWhere("a = 1 AND b = 2 AND c = 3");
  auto dnf = ToDnf(*e, 16);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 1u);
  EXPECT_EQ((*dnf)[0].size(), 3u);
}

TEST(ToDnfTest, DistributesAndOverOr) {
  // Rule 6: A AND (B OR C) -> (A AND B) OR (A AND C).
  ExprPtr e = ParseWhere("a = 1 AND (b = 2 OR c = 3)");
  auto dnf = ToDnf(*e, 16);
  ASSERT_TRUE(dnf.ok());
  ASSERT_EQ(dnf->size(), 2u);
  EXPECT_EQ((*dnf)[0].size(), 2u);
  EXPECT_EQ((*dnf)[1].size(), 2u);
}

TEST(ToDnfTest, CrossProductOfDisjunctions) {
  ExprPtr e = ParseWhere("(a = 1 OR b = 2) AND (c = 3 OR d = 4)");
  auto dnf = ToDnf(*e, 16);
  ASSERT_TRUE(dnf.ok());
  EXPECT_EQ(dnf->size(), 4u);
}

TEST(ToDnfTest, ExceedingBudgetFails) {
  ExprPtr e = ParseWhere(
      "(a = 1 OR a = 2) AND (b = 1 OR b = 2) AND (c = 1 OR c = 2)");
  auto dnf = ToDnf(*e, 4);
  EXPECT_FALSE(dnf.ok());
  EXPECT_EQ(dnf.status().code(), StatusCode::kRewriteError);
}

TEST(ToDnfTest, CapTrippedFlagDistinguishesSizeRefusal) {
  // Callers (SplitDisjunction) use the flag to decide whether a failure
  // may be relabeled kResourceExhausted; it must be set exactly when the
  // disjunct cap caused the failure.
  ExprPtr big = ParseWhere(
      "(a = 1 OR a = 2) AND (b = 1 OR b = 2) AND (c = 1 OR c = 2)");
  bool tripped = false;
  auto dnf = ToDnf(*big, 4, &tripped);
  EXPECT_FALSE(dnf.ok());
  EXPECT_TRUE(tripped);

  ExprPtr small = ParseWhere("a = 1 OR b = 2");
  tripped = true;  // must be reset by ToDnf
  auto ok = ToDnf(*small, 16, &tripped);
  ASSERT_TRUE(ok.ok());
  EXPECT_FALSE(tripped);
}

TEST(InclusionExclusionTest, TwoDisjunctsGiveThreeTerms) {
  ExprPtr e = ParseWhere("a = 1 OR b = 2");
  auto dnf = ToDnf(*e, 16);
  ASSERT_TRUE(dnf.ok());
  auto base = ParseSelect("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(base.ok());
  auto combo = InclusionExclusion(**base, *dnf);
  ASSERT_TRUE(combo.ok());
  // |A ∪ B| = |A| + |B| - |A ∩ B|.
  ASSERT_EQ(combo->terms.size(), 3u);
  double sum = 0;
  int negative = 0;
  for (const auto& t : combo->terms) {
    sum += t.coeff;
    if (t.coeff < 0) ++negative;
  }
  EXPECT_EQ(negative, 1);
  EXPECT_EQ(sum, 1.0);
}

TEST(InclusionExclusionTest, ThreeDisjunctsGiveSevenTerms) {
  ExprPtr e = ParseWhere("a = 1 OR b = 2 OR c = 3");
  auto dnf = ToDnf(*e, 16);
  ASSERT_TRUE(dnf.ok());
  auto base = ParseSelect("SELECT COUNT(*) FROM t");
  auto combo = InclusionExclusion(**base, *dnf);
  ASSERT_TRUE(combo.ok());
  EXPECT_EQ(combo->terms.size(), 7u);
}

TEST(InclusionExclusionTest, SharedAtomsDeduplicated) {
  // (a=1 AND c=3) OR (b=2 AND c=3): the intersection term must not
  // repeat c=3.
  ExprPtr e = ParseWhere("(a = 1 AND c = 3) OR (b = 2 AND c = 3)");
  auto dnf = ToDnf(*e, 16);
  ASSERT_TRUE(dnf.ok());
  auto base = ParseSelect("SELECT COUNT(*) FROM t");
  auto combo = InclusionExclusion(**base, *dnf);
  ASSERT_TRUE(combo.ok());
  ASSERT_EQ(combo->terms.size(), 3u);
  // The last (intersection) term has 3 distinct atoms, not 4.
  const auto& inter = combo->terms.back();
  EXPECT_EQ(CollectConjuncts(inter.query->where.get()).size(), 3u);
}

TEST(InclusionExclusionTest, ZeroDisjunctsRejected) {
  auto base = ParseSelect("SELECT COUNT(*) FROM t");
  auto combo = InclusionExclusion(**base, {});
  EXPECT_FALSE(combo.ok());
}

}  // namespace
}  // namespace viewrewrite
