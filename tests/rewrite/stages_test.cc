#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// Stage-level tests for the individual pipeline phases exposed on
/// Rewriter (the full-pipeline behaviour is covered by
/// rewriter_rules_test and the equivalence property suites).
class StagesTest : public ::testing::Test {
 protected:
  SelectStmtPtr Parse(const std::string& sql) {
    auto r = ParseSelect(sql);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? std::move(r).value() : nullptr;
  }

  Schema schema_ = testing_support::MakeTestSchema();
  Rewriter rewriter_{schema_};
};

TEST_F(StagesTest, InlineWithSubstitutesEverywhere) {
  auto stmt = Parse(
      "WITH t AS (SELECT o_custkey FROM orders) SELECT COUNT(*) FROM t "
      "WHERE t.o_custkey IN (SELECT o_custkey FROM t)");
  ASSERT_TRUE(rewriter_.InlineWithClauses(stmt.get()).ok());
  EXPECT_TRUE(stmt->with.empty());
  std::string sql = ToSql(*stmt);
  // Both the FROM reference and the subquery reference became derived
  // tables; no bare `t` base table remains.
  EXPECT_EQ(sql.find("FROM t "), std::string::npos);
  EXPECT_NE(sql.find("(SELECT o_custkey FROM orders) AS t"),
            std::string::npos);
}

TEST_F(StagesTest, InlineWithChainedDefinitions) {
  auto stmt = Parse(
      "WITH a AS (SELECT o_custkey FROM orders), b AS (SELECT * FROM a) "
      "SELECT COUNT(*) FROM b");
  ASSERT_TRUE(rewriter_.InlineWithClauses(stmt.get()).ok());
  std::string sql = ToSql(*stmt);
  // b's body must contain a's inlined body.
  EXPECT_NE(sql.find("FROM (SELECT * FROM (SELECT o_custkey FROM orders)"),
            std::string::npos);
}

TEST_F(StagesTest, UnnestLeavesPlainQueriesAlone) {
  auto stmt = Parse("SELECT COUNT(*) FROM orders WHERE o_totalprice > 5");
  std::string before = ToSql(*stmt);
  std::vector<ChainLink> chain;
  ASSERT_TRUE(rewriter_.UnnestPredicates(stmt.get(), &chain).ok());
  EXPECT_TRUE(chain.empty());
  EXPECT_EQ(ToSql(*stmt), before);
}

TEST_F(StagesTest, UnnestHandlesSubqueryInsideDerivedTable) {
  auto stmt = Parse(
      "SELECT COUNT(*) FROM (SELECT o_custkey FROM orders WHERE "
      "o_totalprice > (SELECT AVG(o2.o_totalprice) FROM orders o2)) d");
  std::vector<ChainLink> chain;
  ASSERT_TRUE(rewriter_.UnnestPredicates(stmt.get(), &chain).ok());
  // The inner non-correlated scalar became a chain link.
  ASSERT_EQ(chain.size(), 1u);
  EXPECT_NE(ToSql(*stmt).find("$v0"), std::string::npos);
}

TEST_F(StagesTest, ChainLinksNumberedInDependencyOrder) {
  auto stmt = Parse(
      "SELECT COUNT(*) FROM orders WHERE o_totalprice > (SELECT "
      "AVG(o2.o_totalprice) FROM orders o2 WHERE o2.o_totalprice > (SELECT "
      "MIN(o3.o_totalprice) FROM orders o3)) ");
  std::vector<ChainLink> chain;
  ASSERT_TRUE(rewriter_.UnnestPredicates(stmt.get(), &chain).ok());
  ASSERT_EQ(chain.size(), 2u);
  // The innermost (MIN) link comes first so its value is bound before the
  // AVG link executes.
  EXPECT_EQ(chain[0].var, "v0");
  EXPECT_NE(ToSql(*chain[0].query).find("MIN"), std::string::npos);
  EXPECT_EQ(chain[1].var, "v1");
  EXPECT_NE(ToSql(*chain[1].query).find("$v0"), std::string::npos);
}

TEST_F(StagesTest, HoistSkipsDistinctDerivedTables) {
  // DISTINCT changes multiplicity; filters must stay inside.
  auto stmt = Parse(
      "SELECT COUNT(*) FROM (SELECT DISTINCT o_custkey, o_totalprice FROM "
      "orders WHERE o_totalprice > 100) d");
  ASSERT_TRUE(rewriter_.HoistDerivedFilters(stmt.get()).ok());
  EXPECT_NE(ToSql(*stmt->from[0]).find("o_totalprice > 100"),
            std::string::npos);
  EXPECT_EQ(stmt->where, nullptr);
}

TEST_F(StagesTest, HoistRecursesIntoNestedDerived) {
  auto stmt = Parse(
      "SELECT COUNT(*) FROM (SELECT * FROM (SELECT o_custkey, o_totalprice "
      "FROM orders WHERE o_totalprice > 100) inner_d) outer_d");
  ASSERT_TRUE(rewriter_.HoistDerivedFilters(stmt.get()).ok());
  // The innermost filter bubbles to the top WHERE through both levels.
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_NE(ToSql(*stmt->where).find("o_totalprice > 100"),
            std::string::npos);
  EXPECT_EQ(ToSql(*stmt->from[0]).find("WHERE"), std::string::npos);
}

TEST_F(StagesTest, MergeRemapsReferences) {
  auto stmt = Parse(
      "SELECT COUNT(*) FROM (SELECT o_custkey, COUNT(*) AS c1 FROM orders "
      "GROUP BY o_custkey) d1, (SELECT o_custkey, COUNT(*) AS c2 FROM "
      "orders GROUP BY o_custkey) d2 WHERE d1.o_custkey = d2.o_custkey AND "
      "d1.c1 >= 2 AND d2.c2 < 5");
  ASSERT_TRUE(rewriter_.MergeDerivedTables(stmt.get()).ok());
  ASSERT_EQ(stmt->from.size(), 1u);
  std::string where = ToSql(*stmt->where);
  // All d2 references now point at d1; the shared COUNT(*) deduplicated,
  // so c2 resolves to c1.
  EXPECT_EQ(where.find("d2."), std::string::npos);
  EXPECT_NE(where.find("d1.c1 < 5"), std::string::npos);
  // The self-equality survives as d1.o_custkey = d1.o_custkey (a no-op
  // filter) rather than dangling.
  EXPECT_NE(where.find("(d1.o_custkey = d1.o_custkey)"), std::string::npos);
}

TEST_F(StagesTest, MergeKeepsDifferentBodiesApart) {
  auto stmt = Parse(
      "SELECT COUNT(*) FROM (SELECT o_custkey FROM orders WHERE o_status = "
      "'f' GROUP BY o_custkey) d1, (SELECT o_custkey FROM orders WHERE "
      "o_status = 'o' GROUP BY o_custkey) d2 WHERE d1.o_custkey = "
      "d2.o_custkey");
  ASSERT_TRUE(rewriter_.MergeDerivedTables(stmt.get()).ok());
  EXPECT_EQ(stmt->from.size(), 2u);
}

TEST_F(StagesTest, CanonicalizePullsWhereEquiIntoOn) {
  auto stmt = Parse(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND o.o_totalprice > 5");
  ASSERT_TRUE(rewriter_.CanonicalizeJoins(stmt.get()).ok());
  ASSERT_EQ(stmt->from.size(), 1u);
  ASSERT_EQ(stmt->from[0]->kind, TableRefKind::kJoin);
  const auto& j = static_cast<const JoinTableRef&>(*stmt->from[0]);
  ASSERT_NE(j.condition, nullptr);
  EXPECT_NE(ToSql(*j.condition).find("c_custkey"), std::string::npos);
  // The single-table filter stays in WHERE.
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_EQ(ToSql(*stmt->where), "(o.o_totalprice > 5)");
}

TEST_F(StagesTest, CanonicalizeAvoidsCrossProducts) {
  // Three tables named so that alphabetical order (c, l, o) differs from
  // the join chain c-o-l: the builder must follow equi-conditions, not
  // produce a customer x lineitem cross product.
  auto stmt = Parse(
      "SELECT COUNT(*) FROM lineitem l, customer c, orders o WHERE "
      "c.c_custkey = o.o_custkey AND o.o_orderkey = l.l_orderkey");
  ASSERT_TRUE(rewriter_.CanonicalizeJoins(stmt.get()).ok());
  std::string sql = ToSql(*stmt->from[0]);
  // Left-deep: customer joins orders first, then lineitem.
  EXPECT_NE(sql.find("customer AS c JOIN orders AS o"), std::string::npos);
  EXPECT_EQ(stmt->where, nullptr);
}

TEST_F(StagesTest, CanonicalizeKeepsNonEquiInWhere) {
  auto stmt = Parse(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_acctbal < "
      "o.o_totalprice");
  ASSERT_TRUE(rewriter_.CanonicalizeJoins(stmt.get()).ok());
  ASSERT_NE(stmt->where, nullptr);
  EXPECT_NE(ToSql(*stmt->where).find("<"), std::string::npos);
}

TEST_F(StagesTest, SplitDisjunctionPassThroughWithoutOr) {
  auto stmt = Parse("SELECT COUNT(*) FROM orders WHERE o_totalprice > 5");
  auto combo = rewriter_.SplitDisjunction(std::move(stmt));
  ASSERT_TRUE(combo.ok());
  EXPECT_EQ(combo->terms.size(), 1u);
  EXPECT_EQ(combo->terms[0].coeff, 1.0);
}

TEST_F(StagesTest, SplitDisjunctionNotOverOrExpands) {
  // NOT (a OR b) -> (NOT a) AND (NOT b): one conjunctive term.
  auto stmt = Parse(
      "SELECT COUNT(*) FROM orders WHERE NOT (o_status = 'f' OR "
      "o_totalprice > 5)");
  auto combo = rewriter_.SplitDisjunction(std::move(stmt));
  ASSERT_TRUE(combo.ok());
  EXPECT_EQ(combo->terms.size(), 1u);
  EXPECT_NE(ToSql(*combo->terms[0].query->where).find("<>"),
            std::string::npos);
}

TEST_F(StagesTest, SplitDisjunctionRespectsCap) {
  RewriteOptions opts;
  opts.max_or_disjuncts = 2;
  Rewriter tight(schema_, opts);
  auto stmt = Parse(
      "SELECT COUNT(*) FROM orders WHERE o_status = 'f' OR o_totalprice > "
      "5 OR o_custkey < 3");
  auto combo = tight.SplitDisjunction(std::move(stmt));
  EXPECT_FALSE(combo.ok());
  EXPECT_EQ(combo.status().code(), StatusCode::kRewriteError);
}

TEST_F(StagesTest, GroupedQueriesPassThroughUnsplit) {
  auto stmt = Parse(
      "SELECT o_custkey, COUNT(*) FROM orders WHERE o_status = 'f' OR "
      "o_totalprice > 5 GROUP BY o_custkey");
  auto combo = rewriter_.SplitDisjunction(std::move(stmt));
  ASSERT_TRUE(combo.ok());
  EXPECT_EQ(combo->terms.size(), 1u);
}

}  // namespace
}  // namespace viewrewrite
