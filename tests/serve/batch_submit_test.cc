#include <gtest/gtest.h>

#include <future>
#include <string>
#include <vector>

#include "serve/query_server.h"
#include "serve/serve_test_util.h"

namespace viewrewrite {
namespace {

/// SubmitBatch semantics: one queue lock per batch, duplicates dedup onto
/// their first occurrence, futures map back positionally, and admission
/// control (oversized, queue-full, shutdown) stays per element.
class BatchSubmitTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = serve_testing::MakeServeContext(42, "batch_submit");
    ASSERT_NE(ctx_.store, nullptr);
  }
  serve_testing::ServeContext ctx_;
};

TEST_F(BatchSubmitTest, DuplicatesDedupWithinTheBatch) {
  ServeOptions options;
  options.num_threads = 2;
  options.enable_cache = false;     // expose the flight accounting
  options.enable_coalescing = false;  // batch dedup works on its own
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  const std::string& a = ctx_.workload[0];
  const std::string& b = ctx_.workload[1];
  const std::string& c = ctx_.workload[2];
  auto futures = server.SubmitBatch({a, a, a, b, b, c});
  ASSERT_EQ(futures.size(), 6u);

  std::vector<Result<ServedAnswer>> got;
  for (auto& f : futures) got.push_back(f.get());
  for (const auto& r : got) ASSERT_TRUE(r.ok()) << r.status();

  // Positional mapping: futures[i] answers sqls[i].
  EXPECT_EQ(got[0]->value, ctx_.Expected(0));
  EXPECT_EQ(got[1]->value, ctx_.Expected(0));
  EXPECT_EQ(got[2]->value, ctx_.Expected(0));
  EXPECT_EQ(got[3]->value, ctx_.Expected(1));
  EXPECT_EQ(got[4]->value, ctx_.Expected(1));
  EXPECT_EQ(got[5]->value, ctx_.Expected(2));

  // First occurrences computed; duplicates rode them.
  EXPECT_FALSE(got[0]->coalesced);
  EXPECT_TRUE(got[1]->coalesced);
  EXPECT_TRUE(got[2]->coalesced);
  EXPECT_FALSE(got[3]->coalesced);
  EXPECT_TRUE(got[4]->coalesced);
  EXPECT_FALSE(got[5]->coalesced);
  EXPECT_EQ(got[1]->attempts, 0u);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 6u);
  EXPECT_EQ(stats.batch_queries, 6u);
  EXPECT_EQ(stats.batch_deduped, 3u);
  EXPECT_EQ(stats.coalesced_waiters, 3u);
  EXPECT_EQ(stats.flights, 3u);  // three distinct texts, three computations
  EXPECT_EQ(stats.max_flight_group, 3u);  // a, a, a resolved together
  EXPECT_EQ(stats.completed, 6u);
}

TEST_F(BatchSubmitTest, BatchAnswersMatchSequentialSubmits) {
  ServeOptions options;
  options.num_threads = 4;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  std::vector<std::string> sqls;
  for (size_t r = 0; r < 4; ++r) {
    for (const std::string& sql : ctx_.workload) sqls.push_back(sql);
  }
  auto futures = server.SubmitBatch(sqls);
  ASSERT_EQ(futures.size(), sqls.size());
  for (size_t i = 0; i < futures.size(); ++i) {
    Result<ServedAnswer> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->value, ctx_.Expected(i % ctx_.workload.size()))
        << sqls[i];
    EXPECT_FALSE(got->stale);
  }
}

TEST_F(BatchSubmitTest, OversizedElementRejectsAloneNotTheBatch) {
  ServeOptions options;
  options.num_threads = 1;
  options.limits.max_sql_bytes = 128;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  const std::string oversized(256, 'x');
  auto futures = server.SubmitBatch({ctx_.workload[0], oversized,
                                     ctx_.workload[1]});
  ASSERT_EQ(futures.size(), 3u);

  Result<ServedAnswer> first = futures[0].get();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->value, ctx_.Expected(0));

  Result<ServedAnswer> rejected = futures[1].get();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);

  Result<ServedAnswer> third = futures[2].get();
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(third->value, ctx_.Expected(1));

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected_oversized, 1u);
  // The rejected element never counted as submitted or batched.
  EXPECT_EQ(stats.submitted, 2u);
  EXPECT_EQ(stats.batch_queries, 2u);
}

TEST_F(BatchSubmitTest, FullQueueRejectsEveryDistinctTextTyped) {
  ServeOptions options;
  options.num_threads = 1;
  options.queue_capacity = 0;  // nothing is ever admitted
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  auto futures = server.SubmitBatch(
      {ctx_.workload[0], ctx_.workload[0], ctx_.workload[1]});
  ASSERT_EQ(futures.size(), 3u);
  for (auto& f : futures) {
    Result<ServedAnswer> got = f.get();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable) << got.status();
  }
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 0u);
  // Rejections count per query, duplicates included: the caller sent
  // three queries and all three were refused.
  EXPECT_EQ(stats.rejected_queue_full, 3u);
  EXPECT_EQ(stats.batch_queries, 0u);
}

TEST_F(BatchSubmitTest, BatchAfterShutdownRejectsAllWithUnavailable) {
  QueryServer server(ctx_.store, ctx_.db->schema(), ServeOptions{});
  server.Shutdown();
  auto futures = server.SubmitBatch(
      {ctx_.workload[0], ctx_.workload[0], ctx_.workload[1]});
  ASSERT_EQ(futures.size(), 3u);
  for (auto& f : futures) {
    Result<ServedAnswer> got = f.get();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable) << got.status();
  }
  EXPECT_EQ(server.stats().rejected_shutdown, 3u);
  EXPECT_EQ(server.stats().submitted, 0u);
}

TEST_F(BatchSubmitTest, EmptyBatchIsANoOp) {
  QueryServer server(ctx_.store, ctx_.db->schema(), ServeOptions{});
  auto futures = server.SubmitBatch({});
  EXPECT_TRUE(futures.empty());
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.batch_queries, 0u);
}

TEST_F(BatchSubmitTest, SharedDeadlineAppliesToEveryElement) {
  ServeOptions options;
  options.num_threads = 1;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  // A negative timeout is expired on arrival: the whole batch — primary
  // and deduped duplicates alike — resolves DeadlineExceeded without
  // touching the answer path.
  auto futures = server.SubmitBatch(
      {ctx_.workload[0], ctx_.workload[0], ctx_.workload[1]}, {},
      std::chrono::nanoseconds(-1));
  ASSERT_EQ(futures.size(), 3u);
  for (auto& f : futures) {
    Result<ServedAnswer> got = f.get();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
        << got.status();
  }
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 3u);
  // An expired batch never reaches admission: every element rejects
  // synchronously (rejected_expired) instead of burning queue slots and
  // a worker dequeue — nothing is submitted, coalesced or flown.
  EXPECT_EQ(stats.rejected_expired, 3u);
  EXPECT_EQ(stats.expired_in_queue, 0u);
  EXPECT_EQ(stats.coalesced_waiters, 0u);
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.flights, 0u);
}

}  // namespace
}  // namespace viewrewrite
