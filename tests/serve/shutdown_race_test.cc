#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "serve/query_server.h"
#include "serve/serve_test_util.h"

namespace viewrewrite {
namespace {

/// The Submit/Shutdown race, hammered hard enough for TSan to see it:
/// submitters racing concurrent Shutdown calls (plus the destructor's
/// implicit one). Every future must resolve — to an answer or a typed
/// Unavailable — and no request may be silently abandoned.
class ShutdownRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = serve_testing::MakeServeContext(42, "shutdown_race");
    ASSERT_NE(ctx_.store, nullptr);
  }
  serve_testing::ServeContext ctx_;
};

TEST_F(ShutdownRaceTest, EveryFutureResolvesWhenSubmittersRaceShutdown) {
  for (int round = 0; round < 5; ++round) {
    ServeOptions options;
    options.num_threads = 3;
    options.queue_capacity = 4096;
    QueryServer server(ctx_.store, ctx_.db->schema(), options);

    constexpr size_t kSubmitters = 4;
    constexpr size_t kPerThread = 200;
    std::vector<std::vector<std::future<Result<ServedAnswer>>>> futures(
        kSubmitters);
    std::atomic<bool> go{false};
    std::vector<std::thread> threads;
    for (size_t t = 0; t < kSubmitters; ++t) {
      threads.emplace_back([&, t] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        for (size_t i = 0; i < kPerThread; ++i) {
          futures[t].push_back(
              server.Submit(ctx_.workload[i % ctx_.workload.size()]));
        }
      });
    }
    // Two extra threads race Shutdown against the submitters and against
    // each other; the destructor adds a third call at scope exit.
    std::vector<std::thread> stoppers;
    for (int s = 0; s < 2; ++s) {
      stoppers.emplace_back([&] {
        while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
        server.Shutdown();
      });
    }
    go.store(true, std::memory_order_release);
    for (std::thread& t : threads) t.join();
    for (std::thread& t : stoppers) t.join();

    size_t answered = 0, rejected = 0;
    for (size_t t = 0; t < kSubmitters; ++t) {
      for (auto& f : futures[t]) {
        // wait_for instead of get-first: a hung future is a deadlock
        // diagnosis, not a test timeout.
        ASSERT_EQ(f.wait_for(std::chrono::seconds(60)),
                  std::future_status::ready)
            << "abandoned future in round " << round;
        Result<ServedAnswer> got = f.get();
        if (got.ok()) {
          ++answered;
        } else {
          EXPECT_EQ(got.status().code(), StatusCode::kUnavailable)
              << got.status();
          ++rejected;
        }
      }
    }
    EXPECT_EQ(answered + rejected, kSubmitters * kPerThread);

    ServeStats stats = server.stats();
    EXPECT_EQ(stats.completed, answered);
    EXPECT_EQ(stats.rejected_shutdown + stats.rejected_queue_full, rejected);
    EXPECT_EQ(stats.submitted, answered);  // accepted == answered: drained
  }
}

TEST_F(ShutdownRaceTest, CoalescedWaitersResolveAcrossShutdown) {
  // Regression for the Submit/Shutdown interaction with coalescing: a
  // shutdown racing a parked flight full of coalesced waiters must let
  // the flight's leader finish the drain and resolve every waiter — to
  // the answer or a typed Unavailable — and must never hang or abandon a
  // promise. The flight is parked deterministically: its first answer
  // attempt hits an injected fault and the retry backoff holds it for
  // ~400ms while the duplicates pile on and Shutdown lands mid-flight.
  for (int round = 0; round < 3; ++round) {
    ServeOptions options;
    options.num_threads = 3;
    options.enable_cache = false;
    options.retry.max_attempts = 2;
    options.retry.initial_backoff = std::chrono::milliseconds(400);
    options.retry.max_backoff = std::chrono::milliseconds(400);
    options.retry.jitter = 0;
    QueryServer server(ctx_.store, ctx_.db->schema(), options);
    ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);

    std::vector<std::future<Result<ServedAnswer>>> futures;
    futures.push_back(server.Submit(ctx_.workload[0]));
    {
      const auto until =
          std::chrono::steady_clock::now() + std::chrono::seconds(10);
      while (server.stats().flights < 1 &&
             std::chrono::steady_clock::now() < until) {
        std::this_thread::yield();
      }
      ASSERT_GE(server.stats().flights, 1u);
    }
    for (int i = 0; i < 5; ++i) {
      futures.push_back(server.Submit(ctx_.workload[0]));
    }

    // Shutdown while the flight is (very likely) still in its backoff
    // window, with waiters attached. It must return — the drain finishes
    // the leader, the leader resolves the waiters.
    server.Shutdown();

    size_t answered = 0, rejected = 0;
    for (auto& f : futures) {
      ASSERT_EQ(f.wait_for(std::chrono::seconds(60)),
                std::future_status::ready)
          << "coalesced waiter abandoned across shutdown in round " << round;
      Result<ServedAnswer> got = f.get();
      if (got.ok()) {
        ++answered;
        EXPECT_EQ(got->value, ctx_.Expected(0));
      } else {
        EXPECT_EQ(got.status().code(), StatusCode::kUnavailable)
            << got.status();
        ++rejected;
      }
    }
    EXPECT_EQ(answered + rejected, futures.size());
    // The leader was accepted before Shutdown, so it always completes;
    // duplicates either joined its flight (answered with it) or arrived
    // after stopping_ flipped (typed Unavailable).
    EXPECT_GE(answered, 1u);
    FaultInjection::Instance().DisableAll();
  }
}

TEST_F(ShutdownRaceTest, ShutdownIsIdempotent) {
  QueryServer server(ctx_.store, ctx_.db->schema(), ServeOptions{});
  ASSERT_TRUE(server.Submit(ctx_.workload[0]).get().ok());
  server.Shutdown();
  server.Shutdown();  // second explicit call is a no-op
  auto after = server.Submit(ctx_.workload[0]).get();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().rejected_shutdown, 1u);
}

}  // namespace
}  // namespace viewrewrite
