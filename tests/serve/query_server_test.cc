#include <gtest/gtest.h>
#include <unistd.h>

#include <future>
#include <memory>
#include <string>
#include <vector>

#include "engine/viewrewrite_engine.h"
#include "serve/query_server.h"
#include "serve/synopsis_store.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// Publishes a small workload over the mini TPC-H test database and loads
/// the bundle back through disk, the way a serving process would.
class QueryServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    db_ = testing_support::MakeTestDatabase(13, 40).release();
    engine_ = new ViewRewriteEngine(*db_, PrivacyPolicy{"customer"},
                                    EngineOptions{});
    workload_ = new std::vector<std::string>{
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64",
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 128",
        "SELECT COUNT(*) FROM orders o WHERE o.o_status = 'f'",
        "SELECT SUM(o_totalprice) FROM orders o WHERE o.o_status = 'o'",
        "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
        "o.o_custkey AND c.c_nation = 1",
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64 OR "
        "o.o_status = 'p'",
    };
    ASSERT_TRUE(engine_->Prepare(*workload_).ok());

    // Pid-unique path: ctest runs each case of this binary as its own
    // process, and concurrent Saves to one path are unsupported.
    const std::string path = ::testing::TempDir() + "server_bundle." +
                             std::to_string(::getpid()) + ".vrsy";
    auto snapshot = SynopsisStore::FromManager(engine_->views(), db_->schema());
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    ASSERT_TRUE(snapshot->Save(path).ok());
    auto loaded = SynopsisStore::Load(path, db_->schema());
    ASSERT_TRUE(loaded.ok()) << loaded.status();
    store_ = new std::shared_ptr<const SynopsisStore>(
        std::make_shared<SynopsisStore>(std::move(*loaded)));
  }

  static void TearDownTestSuite() {
    delete store_;
    delete engine_;
    delete workload_;
    delete db_;
    store_ = nullptr;
    engine_ = nullptr;
    workload_ = nullptr;
    db_ = nullptr;
  }

  static Database* db_;
  static ViewRewriteEngine* engine_;
  static std::vector<std::string>* workload_;
  static std::shared_ptr<const SynopsisStore>* store_;
};

Database* QueryServerTest::db_ = nullptr;
ViewRewriteEngine* QueryServerTest::engine_ = nullptr;
std::vector<std::string>* QueryServerTest::workload_ = nullptr;
std::shared_ptr<const SynopsisStore>* QueryServerTest::store_ = nullptr;

TEST_F(QueryServerTest, ConcurrentServingMatchesEngineAnswers) {
  // The expected values: what the engine answers in-process from the same
  // (pre-save) synopses. Serving from the reloaded bundle across 8
  // threads must reproduce them exactly, for every one of >= 1000
  // submissions.
  std::vector<double> expected;
  for (size_t i = 0; i < workload_->size(); ++i) {
    auto ans = engine_->NoisyAnswer(i);
    ASSERT_TRUE(ans.ok()) << ans.status();
    expected.push_back(*ans);
  }

  ServeOptions options;
  options.num_threads = 8;
  options.queue_capacity = 4096;
  QueryServer server(*store_, db_->schema(), options);

  constexpr size_t kSubmissions = 1200;
  std::vector<std::future<Result<ServedAnswer>>> futures;
  futures.reserve(kSubmissions);
  for (size_t i = 0; i < kSubmissions; ++i) {
    futures.push_back(server.Submit((*workload_)[i % workload_->size()]));
  }
  for (size_t i = 0; i < kSubmissions; ++i) {
    Result<ServedAnswer> got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_FALSE(got->stale);
    EXPECT_EQ(got->value, expected[i % expected.size()])
        << (*workload_)[i % workload_->size()];
  }
  server.Shutdown();

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kSubmissions);
  EXPECT_EQ(stats.completed, kSubmissions);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  // Each distinct query computes once (plus canonical-key misses); the
  // rest hit the cache.
  EXPECT_GT(stats.cache_hits, kSubmissions / 2);
}

TEST_F(QueryServerTest, CacheDisabledStillAnswersIdentically) {
  ServeOptions cached;
  cached.num_threads = 2;
  ServeOptions uncached;
  uncached.num_threads = 2;
  uncached.enable_cache = false;
  QueryServer with_cache(*store_, db_->schema(), cached);
  QueryServer without_cache(*store_, db_->schema(), uncached);
  for (const std::string& sql : *workload_) {
    auto a = with_cache.Answer(sql);
    auto b = without_cache.Answer(sql);
    ASSERT_TRUE(a.ok()) << a.status();
    ASSERT_TRUE(b.ok()) << b.status();
    EXPECT_EQ(a->value, b->value) << sql;
  }
  EXPECT_EQ(without_cache.stats().cache_hits, 0u);
  EXPECT_EQ(without_cache.stats().cache_misses, 0u);
}

TEST_F(QueryServerTest, CanonicalKeyCatchesTextualVariants) {
  QueryServer server(*store_, db_->schema(), ServeOptions{});
  auto a = server.Answer("SELECT COUNT(*) FROM orders o WHERE "
                         "o.o_totalprice >= 64");
  ASSERT_TRUE(a.ok()) << a.status();
  // Textually different (extra parentheses, lowercase keyword), but the
  // canonical rewritten form is identical: the raw key misses, the
  // canonical key hits.
  auto b = server.Answer("select COUNT(*) FROM orders o WHERE "
                         "((o.o_totalprice >= 64))");
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_EQ(a->value, b->value);
  EXPECT_GE(server.stats().cache_hits, 1u);
}

TEST_F(QueryServerTest, UnmatchableQueryGetsTypedStatusAndNoCrash) {
  QueryServer server(*store_, db_->schema(), ServeOptions{});
  // Structurally sound, but no registered view covers a customer-only
  // aggregate: the serve layer has no budget to spend on a fresh view, so
  // this must be a typed refusal.
  auto unmatched =
      server.Submit("SELECT COUNT(*) FROM customer c WHERE c.c_nation = 2")
          .get();
  ASSERT_FALSE(unmatched.ok());
  EXPECT_EQ(unmatched.status().code(), StatusCode::kNotFound);

  auto unparseable = server.Submit("SELECT FROM WHERE").get();
  EXPECT_FALSE(unparseable.ok());

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.failed, 2u);
  EXPECT_EQ(stats.unmatched, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST_F(QueryServerTest, FullQueueRejectsWithUnavailable) {
  ServeOptions options;
  options.num_threads = 1;
  options.queue_capacity = 0;  // every submission rejects deterministically
  QueryServer server(*store_, db_->schema(), options);
  auto result = server.Submit((*workload_)[0]).get();
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(server.stats().rejected, 1u);
  EXPECT_EQ(server.stats().submitted, 0u);
}

TEST_F(QueryServerTest, SubmitAfterShutdownIsUnavailable) {
  QueryServer server(*store_, db_->schema(), ServeOptions{});
  auto before = server.Submit((*workload_)[0]).get();
  EXPECT_TRUE(before.ok()) << before.status();
  server.Shutdown();
  auto after = server.Submit((*workload_)[0]).get();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace viewrewrite
