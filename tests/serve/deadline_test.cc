#include <gtest/gtest.h>

#include <chrono>

#include "common/fault_injection.h"
#include "serve/query_server.h"
#include "serve/serve_test_util.h"

namespace viewrewrite {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

/// Deadline semantics: expiry yields a typed DeadlineExceeded, never
/// poisons the worker, and never pollutes the cache.
class DeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = serve_testing::MakeServeContext(42, "deadline");
    ASSERT_NE(ctx_.store, nullptr);
  }
  void TearDown() override { FaultInjection::Instance().DisableAll(); }

  serve_testing::ServeContext ctx_;
};

TEST_F(DeadlineTest, ExpiredWhileQueuedResolvesTypedAndWorkerSurvives) {
  ServeOptions options;
  options.num_threads = 1;  // the same worker must answer the follow-up
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  // A negative timeout is expired on arrival: deterministic expiry with
  // no sleeping and no race against the worker.
  auto expired =
      server.Submit(ctx_.workload[0], {}, nanoseconds(-1)).get();
  ASSERT_FALSE(expired.ok());
  EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);

  // The worker thread moved on; the identical query now succeeds with
  // the exact published value — the earlier failure was not cached.
  auto later = server.Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(later.ok()) << later.status();
  EXPECT_FALSE(later->stale);
  EXPECT_EQ(later->value, ctx_.Expected(0));

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 1u);
}

TEST_F(DeadlineTest, ExpiredDeadlineRejectsSynchronouslyBeforeAdmission) {
  ServeOptions options;
  options.num_threads = 1;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  // Regression: an already-expired Submit used to occupy a queue slot
  // and a worker dequeue before resolving. It must now resolve
  // synchronously — the future is ready the moment Submit returns, and
  // nothing was ever submitted, queued or flown.
  auto future = server.Submit(ctx_.workload[0], {}, nanoseconds(-1));
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto got = future.get();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected_expired, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.expired_in_queue, 0u);
  EXPECT_EQ(stats.flights, 0u);
  // Still a failed request past its deadline, observably.
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_EQ(stats.failed, 1u);
}

TEST_F(DeadlineTest, MidAnswerTimeoutDuringRetryBackoff) {
  ServeOptions options;
  options.num_threads = 1;
  options.enable_cache = false;
  // Backoff far exceeds the request deadline: attempt 1 fails with an
  // injected transient fault, the retry sleep is capped by the deadline,
  // and attempt 2 finds the deadline expired.
  options.retry.max_attempts = 3;
  options.retry.initial_backoff = milliseconds(50);
  options.retry.max_backoff = milliseconds(50);
  options.retry.jitter = 0;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  {
    ScopedFault fault = ScopedFault::EveryN(faults::kServeAnswer, 1);
    auto got = server.Submit(ctx_.workload[1], {}, milliseconds(5)).get();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded)
        << got.status();
  }

  // Fault disarmed: the same worker serves the same query correctly.
  auto later = server.Answer(ctx_.workload[1]);
  ASSERT_TRUE(later.ok()) << later.status();
  EXPECT_EQ(later->value, ctx_.Expected(1));

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.deadline_exceeded, 1u);
  EXPECT_GE(stats.retries, 1u);
}

TEST_F(DeadlineTest, ServerDefaultTimeoutAppliesWhenRequestHasNone) {
  ServeOptions options;
  options.num_threads = 1;
  options.enable_cache = false;
  options.default_timeout = milliseconds(2);
  options.retry.max_attempts = 5;
  options.retry.initial_backoff = milliseconds(20);
  options.retry.jitter = 0;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  ScopedFault fault = ScopedFault::EveryN(faults::kServeAnswer, 1);
  auto got = server.Submit(ctx_.workload[2]).get();  // no explicit timeout
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kDeadlineExceeded);
}

TEST_F(DeadlineTest, GenerousDeadlineDoesNotDisturbAnswers) {
  ServeOptions options;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);
  for (size_t i = 0; i < ctx_.workload.size(); ++i) {
    auto got =
        server.Submit(ctx_.workload[i], {}, std::chrono::seconds(30)).get();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->value, ctx_.Expected(i)) << ctx_.workload[i];
  }
  EXPECT_EQ(server.stats().deadline_exceeded, 0u);
}

}  // namespace
}  // namespace viewrewrite
