#include <gtest/gtest.h>

#include <chrono>
#include <deque>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "serve/overload.h"
#include "serve/query_server.h"
#include "serve/serve_test_util.h"

namespace viewrewrite {
namespace {

using std::chrono::milliseconds;
using std::chrono::nanoseconds;

TEST(PriorityTaskQueueTest, PopsStrictPriorityFifoWithinClass) {
  PriorityTaskQueue<int> queue;
  queue.Push(Priority::kBackground, 30);
  queue.Push(Priority::kBatch, 20);
  queue.Push(Priority::kInteractive, 10);
  queue.Push(Priority::kInteractive, 11);
  queue.Push(Priority::kBatch, 21);
  queue.Push(Priority::kBackground, 31);
  ASSERT_EQ(queue.size(), 6u);

  // Every interactive item drains before any batch item regardless of
  // arrival order, and within a class order is FIFO.
  std::vector<int> order;
  std::vector<Priority> classes;
  while (!queue.empty()) {
    Priority p;
    order.push_back(queue.Pop(&p));
    classes.push_back(p);
  }
  EXPECT_EQ(order, (std::vector<int>{10, 11, 20, 21, 30, 31}));
  EXPECT_EQ(classes,
            (std::vector<Priority>{
                Priority::kInteractive, Priority::kInteractive,
                Priority::kBatch, Priority::kBatch, Priority::kBackground,
                Priority::kBackground}));
}

TEST(PriorityTaskQueueTest, LaneSizeTracksPerClassOccupancy) {
  PriorityTaskQueue<int> queue;
  queue.Push(Priority::kBatch, 1);
  queue.Push(Priority::kBatch, 2);
  queue.Push(Priority::kBackground, 3);
  EXPECT_EQ(queue.lane_size(Priority::kInteractive), 0u);
  EXPECT_EQ(queue.lane_size(Priority::kBatch), 2u);
  EXPECT_EQ(queue.lane_size(Priority::kBackground), 1u);
  queue.Pop();
  EXPECT_EQ(queue.lane_size(Priority::kBatch), 1u);
}

TEST(PriorityTaskQueueTest, DisplacementEvictsYoungestOfLowestClass) {
  PriorityTaskQueue<int> queue;
  queue.Push(Priority::kBatch, 20);
  queue.Push(Priority::kBackground, 30);
  queue.Push(Priority::kBackground, 31);

  // An interactive arrival sheds the lowest class first, and within it
  // the youngest (least-waited) item.
  std::optional<int> victim = queue.DisplaceLowerThan(Priority::kInteractive);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 31);
  victim = queue.DisplaceLowerThan(Priority::kInteractive);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 30);
  // Background drained; batch is next in line.
  victim = queue.DisplaceLowerThan(Priority::kInteractive);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 20);
  // Nothing left that outranks: no displacement.
  EXPECT_FALSE(queue.DisplaceLowerThan(Priority::kInteractive).has_value());
  EXPECT_TRUE(queue.empty());
}

TEST(PriorityTaskQueueTest, ArrivalNeverDisplacesItsOwnClassOrBetter) {
  PriorityTaskQueue<int> queue;
  queue.Push(Priority::kInteractive, 10);
  queue.Push(Priority::kBatch, 20);
  // A batch arrival cannot displace batch or interactive.
  EXPECT_FALSE(queue.DisplaceLowerThan(Priority::kBatch).has_value());
  // A background arrival outranks nothing at all.
  queue.Push(Priority::kBackground, 30);
  EXPECT_FALSE(queue.DisplaceLowerThan(Priority::kBackground).has_value());
  EXPECT_EQ(queue.size(), 3u);
}

TEST(PriorityTaskQueueTest, BatchDrainsUnderBoundedInteractiveLoad) {
  // Starvation model: each round, up to 2 interactive requests arrive
  // and the worker pops 3 items. Strict priority serves interactive
  // first, but because the pop rate exceeds the interactive arrival
  // rate, the batch backlog drains every round — bounded interactive
  // load can delay batch, never starve it.
  PriorityTaskQueue<int> queue;
  const int kBatchBacklog = 50;
  for (int i = 0; i < kBatchBacklog; ++i) queue.Push(Priority::kBatch, i);

  int batch_served = 0;
  int next_expected_batch = 0;
  for (int round = 0; round < 200 && batch_served < kBatchBacklog; ++round) {
    const int interactive_arrivals = (round % 3 == 0) ? 2 : 1;  // bounded
    for (int i = 0; i < interactive_arrivals; ++i) {
      queue.Push(Priority::kInteractive, 1000 + round * 10 + i);
    }
    for (int pops = 0; pops < 3 && !queue.empty(); ++pops) {
      Priority p;
      const int item = queue.Pop(&p);
      if (p == Priority::kBatch) {
        // Batch also keeps FIFO order while being interleaved.
        EXPECT_EQ(item, next_expected_batch);
        ++next_expected_batch;
        ++batch_served;
      }
    }
  }
  EXPECT_EQ(batch_served, kBatchBacklog) << "batch starved by interactive";
}

// ---- Displacement through the QueryServer. ---------------------------------

class PriorityServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = serve_testing::MakeServeContext(42, "priority");
    ASSERT_NE(ctx_.store, nullptr);
  }
  void TearDown() override { FaultInjection::Instance().DisableAll(); }

  serve_testing::ServeContext ctx_;
};

TEST_F(PriorityServeTest, InteractiveDisplacesQueuedBackgroundWhenFull) {
  ServeOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.enable_cache = false;
  // Pin the single worker: attempt 1 takes an injected fault, the retry
  // backoff holds it for 200ms while the queue fills behind it.
  options.retry.max_attempts = 2;
  options.retry.initial_backoff = milliseconds(200);
  options.retry.max_backoff = milliseconds(200);
  options.retry.jitter = 0;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  std::future<Result<ServedAnswer>> slow;
  std::future<Result<ServedAnswer>> background;
  {
    ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);
    slow = server.Submit(ctx_.workload[0]);
    // Let the worker dequeue it and enter the backoff sleep, freeing the
    // single queue slot.
    std::this_thread::sleep_for(milliseconds(30));

    background = server.Submit(ctx_.workload[1], {}, nanoseconds(0),
                               Priority::kBackground);
    // The slot is occupied by background work; the interactive arrival
    // displaces it rather than being refused.
    auto interactive = server.Submit(ctx_.workload[2], {}, nanoseconds(0),
                                     Priority::kInteractive);

    // The victim resolves immediately with the typed overload error —
    // displacement never leaves a future hanging.
    ASSERT_EQ(background.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    auto evicted = background.get();
    ASSERT_FALSE(evicted.ok());
    EXPECT_EQ(evicted.status().code(), StatusCode::kResourceExhausted);

    auto got = interactive.get();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->value, ctx_.Expected(2));
  }
  auto first = slow.get();
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->value, ctx_.Expected(0));

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.shed_displaced, 1u);
  EXPECT_EQ(stats.rejected_queue_full, 0u);
  // The displaced request was admitted (submitted) before being shed;
  // the extended conservation law still balances.
  EXPECT_EQ(stats.submitted, 3u);
  EXPECT_EQ(stats.flights + stats.coalesced_waiters +
                stats.cache_short_circuits + stats.expired_in_queue +
                stats.shed_hopeless + stats.shed_displaced,
            stats.submitted);
}

TEST_F(PriorityServeTest, NoVictimMeansQueueFullStaysUnavailable) {
  ServeOptions options;
  options.num_threads = 1;
  options.queue_capacity = 1;
  options.enable_cache = false;
  options.retry.max_attempts = 2;
  options.retry.initial_backoff = milliseconds(200);
  options.retry.max_backoff = milliseconds(200);
  options.retry.jitter = 0;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  std::future<Result<ServedAnswer>> slow;
  {
    ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);
    slow = server.Submit(ctx_.workload[0]);
    std::this_thread::sleep_for(milliseconds(30));

    // The slot holds an interactive request; a background arrival
    // outranks nothing, so it is refused with the queue-full error, and
    // the queued request is untouched.
    auto queued = server.Submit(ctx_.workload[1]);
    auto refused_future = server.Submit(ctx_.workload[2], {}, nanoseconds(0),
                                        Priority::kBackground);
    ASSERT_EQ(refused_future.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
    auto refused = refused_future.get();
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kUnavailable);

    auto got = queued.get();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->value, ctx_.Expected(1));
  }
  ASSERT_TRUE(slow.get().ok());

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected_queue_full, 1u);
  EXPECT_EQ(stats.shed_displaced, 0u);
}

TEST_F(PriorityServeTest, BatchSubmitCarriesPriorityClass) {
  ServeOptions options;
  options.num_threads = 2;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);
  auto futures = server.SubmitBatch(
      {ctx_.workload[0], ctx_.workload[1]}, {}, nanoseconds(0),
      Priority::kBatch);
  ASSERT_EQ(futures.size(), 2u);
  for (size_t i = 0; i < futures.size(); ++i) {
    auto got = futures[i].get();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->value, ctx_.Expected(i));
  }
}

}  // namespace
}  // namespace viewrewrite
