#ifndef VIEWREWRITE_TESTS_SERVE_SERVE_TEST_UTIL_H_
#define VIEWREWRITE_TESTS_SERVE_SERVE_TEST_UTIL_H_

// Shared setup for the serve-layer resilience tests: publish a small
// workload over the mini TPC-H test database, save the bundle, and load
// it back through disk the way a serving process would.

#include <gtest/gtest.h>
#include <unistd.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/viewrewrite_engine.h"
#include "serve/synopsis_store.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace serve_testing {

struct ServeContext {
  std::unique_ptr<Database> db;
  std::unique_ptr<ViewRewriteEngine> engine;
  std::vector<std::string> workload;
  std::string bundle_path;
  std::shared_ptr<const SynopsisStore> store;

  /// Fault-free engine answer for workload query `i` (exact serve target).
  double Expected(size_t i) {
    Result<double> ans = engine->NoisyAnswer(i);
    EXPECT_TRUE(ans.ok()) << ans.status();
    return ans.ok() ? *ans : 0;
  }
};

/// Publishes the standard workload with noise seed `engine_seed` and
/// round-trips the bundle through `name`.vrsy in the test temp dir.
/// Different seeds produce different noisy cells — the reload test uses
/// that to tell two bundles apart. `lifetime_epsilon` > 0 leaves a
/// cross-epoch reserve for republish-generation tests (see
/// EngineOptions::lifetime_epsilon).
inline ServeContext MakeServeContext(uint64_t engine_seed = 42,
                                     const std::string& name = "bundle",
                                     double lifetime_epsilon = 0) {
  ServeContext ctx;
  ctx.db = testing_support::MakeTestDatabase(13, 40);
  ctx.workload = {
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64",
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 128",
      "SELECT COUNT(*) FROM orders o WHERE o.o_status = 'f'",
      "SELECT SUM(o_totalprice) FROM orders o WHERE o.o_status = 'o'",
  };
  EngineOptions options;
  options.seed = engine_seed;
  options.lifetime_epsilon = lifetime_epsilon;
  ctx.engine = std::make_unique<ViewRewriteEngine>(
      *ctx.db, PrivacyPolicy{"customer"}, options);
  Status prepared = ctx.engine->Prepare(ctx.workload);
  EXPECT_TRUE(prepared.ok()) << prepared;
  if (!prepared.ok()) return ctx;

  // The pid keeps concurrently running test processes of the same binary
  // from publishing over each other's bundle: concurrent Saves to one
  // path are unsupported (a successful publish sweeps `<path>.tmp*`
  // siblings, including a neighbour's in-flight temp file).
  ctx.bundle_path = ::testing::TempDir() + name + "_" +
                    std::to_string(engine_seed) + "." +
                    std::to_string(::getpid()) + ".vrsy";
  Result<SynopsisStore> snapshot =
      SynopsisStore::FromManager(ctx.engine->views(), ctx.db->schema());
  EXPECT_TRUE(snapshot.ok()) << snapshot.status();
  if (!snapshot.ok()) return ctx;
  Status saved = snapshot->Save(ctx.bundle_path);
  EXPECT_TRUE(saved.ok()) << saved;
  Result<SynopsisStore> loaded =
      SynopsisStore::Load(ctx.bundle_path, ctx.db->schema());
  EXPECT_TRUE(loaded.ok()) << loaded.status();
  if (loaded.ok()) {
    ctx.store = std::make_shared<const SynopsisStore>(std::move(*loaded));
  }
  return ctx;
}

}  // namespace serve_testing
}  // namespace viewrewrite

#endif  // VIEWREWRITE_TESTS_SERVE_SERVE_TEST_UTIL_H_
