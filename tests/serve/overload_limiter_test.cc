#include "serve/overload.h"

#include <gtest/gtest.h>

#include <chrono>
#include <future>

#include "common/fault_injection.h"
#include "serve/query_server.h"
#include "serve/serve_test_util.h"

namespace viewrewrite {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;
using std::chrono::nanoseconds;
using std::chrono::steady_clock;

/// Manually advanced clock injected into the limiter/controller, exactly
/// like the circuit-breaker tests: no sleeping, fully deterministic.
struct FakeClock {
  steady_clock::time_point now = steady_clock::time_point{};
  AdaptiveLimiter::ClockFn fn() {
    return [this] { return now; };
  }
};

TEST(AdaptiveLimiterTest, DisabledLimiterAdmitsEverything) {
  AdaptiveLimiterOptions options;  // enabled = false
  AdaptiveLimiter limiter(options);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_TRUE(limiter.TryAcquire(Priority::kBackground));
  }
  EXPECT_EQ(limiter.in_flight(), 0u);
}

TEST(AdaptiveLimiterTest, AcquireReleaseTracksInFlightAgainstLimit) {
  FakeClock clock;
  AdaptiveLimiterOptions options;
  options.enabled = true;
  options.initial_limit = 3;
  options.min_limit = 1;
  AdaptiveLimiter limiter(options, clock.fn());
  EXPECT_TRUE(limiter.TryAcquire(Priority::kInteractive));
  EXPECT_TRUE(limiter.TryAcquire(Priority::kInteractive));
  EXPECT_TRUE(limiter.TryAcquire(Priority::kInteractive));
  EXPECT_FALSE(limiter.TryAcquire(Priority::kInteractive));
  EXPECT_EQ(limiter.in_flight(), 3u);
  limiter.Release();
  EXPECT_TRUE(limiter.TryAcquire(Priority::kInteractive));
  EXPECT_FALSE(limiter.TryAcquire(Priority::kInteractive));
}

TEST(AdaptiveLimiterTest, LowerClassesLoseHeadroomFirst) {
  FakeClock clock;
  AdaptiveLimiterOptions options;
  options.enabled = true;
  options.initial_limit = 10;
  options.min_limit = 1;
  options.batch_fraction = 0.9;       // batch cap = 9
  options.background_fraction = 0.5;  // background cap = 5
  AdaptiveLimiter limiter(options, clock.fn());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(limiter.TryAcquire(Priority::kInteractive));
  }
  // At 5 in flight, background is squeezed out but batch and interactive
  // still fit — shedding is lowest-class-first, never all-at-once.
  EXPECT_FALSE(limiter.TryAcquire(Priority::kBackground));
  EXPECT_TRUE(limiter.TryAcquire(Priority::kBatch));
  for (int i = 6; i < 9; ++i) {
    ASSERT_TRUE(limiter.TryAcquire(Priority::kBatch));
  }
  // At 9, batch is squeezed out too; interactive may use the full limit.
  EXPECT_FALSE(limiter.TryAcquire(Priority::kBatch));
  EXPECT_TRUE(limiter.TryAcquire(Priority::kInteractive));
  EXPECT_FALSE(limiter.TryAcquire(Priority::kInteractive));
}

TEST(AdaptiveLimiterTest, OverTargetLatencyDecreasesMultiplicatively) {
  FakeClock clock;
  AdaptiveLimiterOptions options;
  options.enabled = true;
  options.initial_limit = 100;
  options.min_limit = 2;
  options.target_queue_latency = milliseconds(2);
  options.decrease_factor = 0.5;
  options.decrease_cooldown = milliseconds(10);
  options.ewma_alpha = 1.0;  // no smoothing: each sample is the signal
  AdaptiveLimiter limiter(options, clock.fn());

  limiter.OnQueueLatency(milliseconds(20));
  EXPECT_DOUBLE_EQ(limiter.limit(), 50);
  EXPECT_EQ(limiter.decreases(), 1u);

  // Within the cooldown further over-target samples must not cut again:
  // one congestion episode costs one cut, not one per queued sample.
  limiter.OnQueueLatency(milliseconds(20));
  limiter.OnQueueLatency(milliseconds(20));
  EXPECT_DOUBLE_EQ(limiter.limit(), 50);
  EXPECT_EQ(limiter.decreases(), 1u);

  clock.now += milliseconds(11);
  limiter.OnQueueLatency(milliseconds(20));
  EXPECT_DOUBLE_EQ(limiter.limit(), 25);
  EXPECT_EQ(limiter.decreases(), 2u);
}

TEST(AdaptiveLimiterTest, BelowTargetLatencyIncreasesAdditively) {
  FakeClock clock;
  AdaptiveLimiterOptions options;
  options.enabled = true;
  options.initial_limit = 10;
  options.max_limit = 20;
  options.target_queue_latency = milliseconds(2);
  options.increase = 1.0;
  options.ewma_alpha = 1.0;
  AdaptiveLimiter limiter(options, clock.fn());

  const double before = limiter.limit();
  limiter.OnQueueLatency(microseconds(100));
  const double after = limiter.limit();
  EXPECT_GT(after, before);
  // Gradient probing: the step is ~increase/limit, far below a full slot.
  EXPECT_LT(after - before, 1.0);
  EXPECT_GE(limiter.increases(), 1u);

  // The limit never grows past max_limit.
  for (int i = 0; i < 10000; ++i) limiter.OnQueueLatency(microseconds(100));
  EXPECT_LE(limiter.limit(), 20.0);
}

TEST(AdaptiveLimiterTest, AimdConvergesUnderSyntheticLatencyModel) {
  // Synthetic plant: workers drain one request per 100us, so the queue
  // latency a dequeue observes is roughly in_flight x 100us with
  // in_flight tracking the limit under saturation. The 2ms target then
  // has its equilibrium at limit = 20: above it latency is over target
  // (decrease), below it under (increase). AIMD must converge into a
  // band around 20 from both directions and stay there.
  for (double start : {100.0, 3.0}) {
    FakeClock clock;
    AdaptiveLimiterOptions options;
    options.enabled = true;
    options.initial_limit = start;
    options.min_limit = 2;
    options.max_limit = 512;
    options.target_queue_latency = milliseconds(2);
    options.decrease_factor = 0.7;
    options.decrease_cooldown = milliseconds(10);
    options.ewma_alpha = 0.5;
    AdaptiveLimiter limiter(options, clock.fn());

    for (int i = 0; i < 4000; ++i) {
      clock.now += milliseconds(1);
      const auto observed =
          microseconds(static_cast<int64_t>(limiter.limit() * 100));
      limiter.OnQueueLatency(observed);
    }
    EXPECT_GT(limiter.limit(), 10.0) << "start=" << start;
    EXPECT_LT(limiter.limit(), 32.0) << "start=" << start;
    EXPECT_GT(limiter.increases(), 0u);
    EXPECT_GT(limiter.decreases(), 0u);
  }
}

TEST(OverloadControllerTest, BrownoutActivatesOnSustainedShedsAndDecays) {
  FakeClock clock;
  OverloadOptions options;
  options.enable_brownout = true;
  options.brownout_window = milliseconds(100);
  options.brownout_shed_threshold = 3;
  OverloadController controller(options, clock.fn());

  EXPECT_FALSE(controller.brownout_active());
  controller.RecordShed();
  controller.RecordShed();
  EXPECT_FALSE(controller.brownout_active());
  controller.RecordShed();
  EXPECT_TRUE(controller.brownout_active());

  // The first quiet window keeps brownout on (the closing window met the
  // threshold); a second quiet window deactivates it — hysteresis, not a
  // flap per sample.
  clock.now += milliseconds(150);
  EXPECT_TRUE(controller.brownout_active());
  clock.now += milliseconds(150);
  EXPECT_FALSE(controller.brownout_active());
}

TEST(OverloadControllerTest, BrownoutDisabledNeverActivates) {
  FakeClock clock;
  OverloadOptions options;  // enable_brownout = false
  options.brownout_shed_threshold = 1;
  OverloadController controller(options, clock.fn());
  for (int i = 0; i < 100; ++i) controller.RecordShed();
  EXPECT_FALSE(controller.brownout_active());
}

TEST(OverloadControllerTest, HopelessRequiresWarmupAndShortDeadline) {
  OverloadOptions options;
  options.service_warmup_samples = 3;
  options.service_ewma_alpha = 1.0;
  OverloadController controller(options);

  // Before warmup, nothing is hopeless — the estimate is noise.
  controller.RecordServiceTime(milliseconds(50));
  controller.RecordServiceTime(milliseconds(50));
  EXPECT_FALSE(controller.Hopeless(Deadline::After(microseconds(1))));

  controller.RecordServiceTime(milliseconds(50));
  // 50ms estimated service vs ~1ms remaining: computing it would be
  // wasted work; vs 500ms remaining: plenty of budget.
  EXPECT_TRUE(controller.Hopeless(Deadline::After(milliseconds(1))));
  EXPECT_FALSE(controller.Hopeless(Deadline::After(milliseconds(500))));
  // Requests without a deadline are never dropped.
  EXPECT_FALSE(controller.Hopeless(Deadline::Infinite()));
}

TEST(OverloadControllerTest, OverloadedReflectsLimiterSaturation) {
  FakeClock clock;
  OverloadOptions options;
  options.limiter.enabled = true;
  options.limiter.initial_limit = 2;
  options.limiter.min_limit = 1;
  OverloadController controller(options, clock.fn());
  EXPECT_FALSE(controller.overloaded());
  EXPECT_TRUE(controller.Admit(Priority::kInteractive));
  EXPECT_TRUE(controller.Admit(Priority::kInteractive));
  EXPECT_TRUE(controller.overloaded());
  controller.Release();
  controller.Release();
  EXPECT_FALSE(controller.overloaded());
}

// ---- Integration through QueryServer. --------------------------------------

class OverloadServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = serve_testing::MakeServeContext(42, "overload");
    ASSERT_NE(ctx_.store, nullptr);
  }
  void TearDown() override { FaultInjection::Instance().DisableAll(); }

  serve_testing::ServeContext ctx_;
};

TEST_F(OverloadServeTest, ForcedShedResolvesFastWithResourceExhausted) {
  QueryServer server(ctx_.store, ctx_.db->schema(), ServeOptions{});
  ScopedFault fault = ScopedFault::EveryN(faults::kServeOverload, 1);
  auto future = server.Submit(ctx_.workload[0]);
  // A shed never occupies a queue slot: the future is ready the moment
  // Submit returns — the "resolve fast with a typed error" contract.
  ASSERT_EQ(future.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  auto got = future.get();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kResourceExhausted);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.shed_admission, 1u);
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.failed, 0u);  // refused at admission, never accepted
}

TEST_F(OverloadServeTest, BrownoutServesStaleCacheAnswerInsteadOfShedding) {
  ServeOptions options;
  options.overload.enable_brownout = true;
  options.overload.brownout_shed_threshold = 1;  // first shed activates
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  // Prime the cache with a live answer.
  auto primed = server.Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(primed.ok()) << primed.status();
  const double expected = primed->value;

  ScopedFault fault = ScopedFault::EveryN(faults::kServeOverload, 1);
  // Cached query: brownout converts the shed into a stale cache answer
  // with exactly the value the live path produced.
  auto browned = server.Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(browned.ok()) << browned.status();
  EXPECT_TRUE(browned->stale);
  EXPECT_EQ(browned->value, expected);

  // Uncached query: nothing to brown out with, typed shed surfaces.
  auto shed = server.Submit(ctx_.workload[1]).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.brownout_served, 1u);
  EXPECT_EQ(stats.shed_admission, 1u);
  EXPECT_EQ(stats.stale_served, 1u);
  EXPECT_EQ(stats.completed, 2u);   // primed + brownout
  EXPECT_EQ(stats.submitted, 1u);   // only the primer was accepted
  EXPECT_TRUE(stats.brownout_active);
}

TEST_F(OverloadServeTest, SaturatedLimiterShedsRealTraffic) {
  ServeOptions options;
  options.num_threads = 1;
  options.enable_cache = false;
  options.overload.limiter.enabled = true;
  options.overload.limiter.initial_limit = 1;
  options.overload.limiter.min_limit = 1;
  options.overload.limiter.max_limit = 1;
  // Pin the single worker in a retry backoff so the limiter's one slot
  // stays held while the second Submit arrives.
  options.retry.max_attempts = 2;
  options.retry.initial_backoff = milliseconds(200);
  options.retry.max_backoff = milliseconds(200);
  options.retry.jitter = 0;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  std::future<Result<ServedAnswer>> slow;
  {
    ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);
    slow = server.Submit(ctx_.workload[0]);
    // Give the worker time to dequeue and enter the backoff sleep. The
    // slot is held from admission to completion either way, so the shed
    // below is deterministic even if this race is lost.
    std::this_thread::sleep_for(milliseconds(20));
    auto shed = server.Submit(ctx_.workload[1]).get();
    ASSERT_FALSE(shed.ok());
    EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  }
  auto first = slow.get();
  ASSERT_TRUE(first.ok()) << first.status();

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.shed_admission, 1u);
  EXPECT_EQ(stats.submitted, 1u);
  // The worker resolves the promise and then releases the limiter slot,
  // so the release can trail slow.get() by a beat — poll for it.
  for (int i = 0; i < 200 && server.stats().limiter_in_flight != 0; ++i) {
    std::this_thread::sleep_for(milliseconds(5));
  }
  EXPECT_EQ(server.stats().limiter_in_flight, 0u);  // slot released
}

}  // namespace
}  // namespace viewrewrite
