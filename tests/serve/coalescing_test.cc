#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "aggregate/grouped_result.h"
#include "serve/query_server.h"
#include "serve/serve_test_util.h"

namespace viewrewrite {
namespace {

using std::chrono::milliseconds;

/// Single-flight coalescing: concurrent identical queries share one
/// computation, every waiter sees the same value or the same typed error,
/// flights are epoch-keyed across hot reloads, and a fresh cache hit
/// never consults the flight table.
///
/// The tests open a deterministic coalescing window with fault injection:
/// the leader's first answer attempt fails and the retry backoff parks
/// the flight for long enough that duplicates submitted meanwhile must
/// join it. The window is hundreds of milliseconds against joins that
/// take microseconds, so the joins land inside it on any sane scheduler
/// (including under TSan); the waits below are bounded, never unbounded.
class CoalescingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = serve_testing::MakeServeContext(42, "coalescing");
    ASSERT_NE(ctx_.store, nullptr);
  }
  void TearDown() override { FaultInjection::Instance().DisableAll(); }

  /// Options that hold a leader in retry backoff for ~`window`: attempt 1
  /// fails (OnNth fault armed by the test), attempt 2 runs after the
  /// backoff and succeeds.
  static ServeOptions WindowOptions(milliseconds window) {
    ServeOptions options;
    options.num_threads = 4;
    options.enable_cache = false;  // force every request onto the flight path
    options.retry.max_attempts = 2;
    options.retry.initial_backoff = window;
    options.retry.max_backoff = window;
    options.retry.jitter = 0;
    return options;
  }

  /// Spins until `pred()` holds or `bound` elapses; returns whether it held.
  template <typename Pred>
  static bool SpinUntil(Pred pred, milliseconds bound = milliseconds(10000)) {
    const auto until = std::chrono::steady_clock::now() + bound;
    while (!pred()) {
      if (std::chrono::steady_clock::now() >= until) return false;
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return true;
  }

  serve_testing::ServeContext ctx_;
};

TEST_F(CoalescingTest, DuplicatesJoinOneFlightAndShareItsValue) {
  QueryServer server(ctx_.store, ctx_.db->schema(),
                     WindowOptions(milliseconds(600)));
  ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);

  auto leader = server.Submit(ctx_.workload[0]);
  // The leader has registered its flight once stats show it; it now sits
  // in retry backoff for the rest of the window.
  ASSERT_TRUE(SpinUntil([&] { return server.stats().flights >= 1; }));

  constexpr size_t kDuplicates = 6;
  std::vector<std::future<Result<ServedAnswer>>> waiters;
  for (size_t i = 0; i < kDuplicates; ++i) {
    waiters.push_back(server.Submit(ctx_.workload[0]));
  }
  ASSERT_TRUE(SpinUntil(
      [&] { return server.stats().coalesced_waiters >= kDuplicates; }))
      << "duplicates did not join the in-flight computation";

  Result<ServedAnswer> led = leader.get();
  ASSERT_TRUE(led.ok()) << led.status();
  EXPECT_FALSE(led->coalesced);
  EXPECT_EQ(led->attempts, 2u);  // first attempt hit the fault, retry won
  for (auto& w : waiters) {
    Result<ServedAnswer> got = w.get();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->value, led->value);
    EXPECT_TRUE(got->coalesced);
    EXPECT_EQ(got->attempts, 0u);  // waiters consumed no answer attempts
    EXPECT_FALSE(got->stale);
  }
  EXPECT_EQ(led->value, ctx_.Expected(0));

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.flights, 1u);  // one computation for 7 requests
  EXPECT_EQ(stats.coalesced_waiters, kDuplicates);
  EXPECT_EQ(stats.max_flight_group, 1 + kDuplicates);
  EXPECT_EQ(stats.completed, 1 + kDuplicates);
  EXPECT_EQ(stats.retries, 1u);          // the leader's, counted once
  EXPECT_EQ(stats.retry_successes, 1u);  // never inflated per waiter
}

TEST_F(CoalescingTest, WaitersReceiveTheLeadersTypedError) {
  ServeOptions options = WindowOptions(milliseconds(600));
  options.serve_stale = false;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);
  // Both attempts fail: the flight's outcome is the injected transient
  // error, and every waiter must see that exact status code.
  ScopedFault fault = ScopedFault::EveryN(faults::kServeAnswer, 1);

  auto leader = server.Submit(ctx_.workload[1]);
  ASSERT_TRUE(SpinUntil([&] { return server.stats().flights >= 1; }));
  constexpr size_t kDuplicates = 4;
  std::vector<std::future<Result<ServedAnswer>>> waiters;
  for (size_t i = 0; i < kDuplicates; ++i) {
    waiters.push_back(server.Submit(ctx_.workload[1]));
  }
  ASSERT_TRUE(SpinUntil(
      [&] { return server.stats().coalesced_waiters >= kDuplicates; }));

  Result<ServedAnswer> led = leader.get();
  ASSERT_FALSE(led.ok());
  EXPECT_EQ(led.status().code(), StatusCode::kInternal) << led.status();
  for (auto& w : waiters) {
    Result<ServedAnswer> got = w.get();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), led.status().code()) << got.status();
  }
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.flights, 1u);
  EXPECT_EQ(stats.failed, 1 + kDuplicates);
  EXPECT_EQ(stats.completed, 0u);
}

TEST_F(CoalescingTest, CanonicalVariantsMergeIntoOneComputation) {
  // Wider window than the join tests: the second variant must get
  // through parse + rewrite before the leader's backoff expires, which
  // can exceed 600ms under sanitizer builds on a loaded machine.
  QueryServer server(ctx_.store, ctx_.db->schema(),
                     WindowOptions(milliseconds(2000)));
  ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);

  // Two textual variants of workload[0]: different raw keys, identical
  // canonical rewritten form. The second leads its own flight, discovers
  // the canonical-equal one after rewriting, and merges into it.
  const std::string variant_a =
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64";
  const std::string variant_b =
      "select COUNT(*) FROM orders o WHERE ((o.o_totalprice >= 64))";

  auto a = server.Submit(variant_a);
  ASSERT_TRUE(SpinUntil([&] { return server.stats().flights >= 1; }));
  auto b = server.Submit(variant_b);
  ASSERT_TRUE(SpinUntil([&] { return server.stats().merged_flights >= 1; }))
      << "canonical-equal flight did not merge";

  Result<ServedAnswer> got_a = a.get();
  Result<ServedAnswer> got_b = b.get();
  ASSERT_TRUE(got_a.ok()) << got_a.status();
  ASSERT_TRUE(got_b.ok()) << got_b.status();
  EXPECT_EQ(got_a->value, got_b->value);
  EXPECT_TRUE(got_b->coalesced);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.flights, 2u);  // both led, one merged before answering
  EXPECT_EQ(stats.merged_flights, 1u);
  EXPECT_GE(stats.max_flight_group, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(CoalescingTest, FlightsAreEpochKeyedAcrossReload) {
  QueryServer server(ctx_.store, ctx_.db->schema(),
                     WindowOptions(milliseconds(600)));
  ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);

  auto before = server.Submit(ctx_.workload[2]);
  ASSERT_TRUE(SpinUntil([&] { return server.stats().flights >= 1; }));

  // Hot reload while the flight is parked: the epoch advances, so an
  // identical query admitted now must NOT join the old epoch's flight —
  // it starts a fresh computation against the new bundle.
  ASSERT_TRUE(server.Reload(ctx_.store).ok());
  auto after = server.Submit(ctx_.workload[2]);
  ASSERT_TRUE(SpinUntil([&] { return server.stats().flights >= 2; }))
      << "post-reload duplicate joined a pre-reload flight";

  Result<ServedAnswer> got_before = before.get();
  Result<ServedAnswer> got_after = after.get();
  ASSERT_TRUE(got_before.ok()) << got_before.status();
  ASSERT_TRUE(got_after.ok()) << got_after.status();
  // Same bundle bytes on both sides of the reload: the values agree, and
  // neither is stale — each was computed live against its own epoch.
  EXPECT_EQ(got_before->value, got_after->value);
  EXPECT_FALSE(got_before->stale);
  EXPECT_FALSE(got_after->stale);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.flights, 2u);
  EXPECT_EQ(stats.coalesced_waiters, 0u);
  EXPECT_EQ(stats.epoch, 1u);
}

TEST_F(CoalescingTest, FreshCacheHitNeverTouchesTheFlightTable) {
  ServeOptions options;
  options.num_threads = 2;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  auto first = server.Answer(ctx_.workload[0]);
  ASSERT_TRUE(first.ok()) << first.status();
  ServeStats after_first = server.stats();
  EXPECT_EQ(after_first.flights, 1u);
  // The completing flight wrote exactly one entry per key: the raw key
  // and the canonical key. No double-insert.
  EXPECT_EQ(after_first.cache_entries, 2u);

  auto second = server.Answer(ctx_.workload[0]);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->value, first->value);
  EXPECT_EQ(second->attempts, 0u);

  ServeStats stats = server.stats();
  // The repeat resolved through the cache channel: no new flight, no
  // coalescing, one short-circuit.
  EXPECT_EQ(stats.flights, 1u);
  EXPECT_EQ(stats.cache_short_circuits, 1u);
  EXPECT_EQ(stats.coalesced_waiters, 0u);
  EXPECT_EQ(stats.cache_entries, 2u);
  EXPECT_GE(stats.cache_hits, 1u);
}

TEST_F(CoalescingTest, CoalescedFlightPopulatesEachCacheKeyOnce) {
  ServeOptions options = WindowOptions(milliseconds(600));
  options.enable_cache = true;  // override: this test is about the cache
  QueryServer server(ctx_.store, ctx_.db->schema(), options);
  ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);

  auto leader = server.Submit(ctx_.workload[3]);
  ASSERT_TRUE(SpinUntil([&] { return server.stats().flights >= 1; }));
  constexpr size_t kDuplicates = 5;
  std::vector<std::future<Result<ServedAnswer>>> waiters;
  for (size_t i = 0; i < kDuplicates; ++i) {
    waiters.push_back(server.Submit(ctx_.workload[3]));
  }
  ASSERT_TRUE(SpinUntil(
      [&] { return server.stats().coalesced_waiters >= kDuplicates; }));

  ASSERT_TRUE(leader.get().ok());
  for (auto& w : waiters) ASSERT_TRUE(w.get().ok());

  // Six requests resolved, but the flight's leader wrote the cache once
  // per key: raw + canonical = exactly two entries.
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.flights, 1u);
  EXPECT_EQ(stats.cache_entries, 2u);
}

TEST_F(CoalescingTest, PropertyCoalescedAnswersEqualUncoalesced) {
  // Property: for the same {store, epoch}, a duplicate-heavy workload
  // answers identically — value for value, status code for status code —
  // with coalescing on and off. Coalescing may only change who computes,
  // never what is returned.
  const std::string unmatchable =
      "SELECT COUNT(*) FROM customer c WHERE c.c_nation = 3";
  std::vector<std::string> requests;
  constexpr size_t kRounds = 40;
  for (size_t r = 0; r < kRounds; ++r) {
    requests.push_back(ctx_.workload[r % ctx_.workload.size()]);
    if (r % 5 == 4) requests.push_back(unmatchable);
  }

  auto run = [&](bool coalesce) {
    ServeOptions options;
    options.num_threads = 4;
    options.enable_coalescing = coalesce;
    QueryServer server(ctx_.store, ctx_.db->schema(), options);
    std::vector<std::future<Result<ServedAnswer>>> futures;
    for (const std::string& sql : requests) {
      futures.push_back(server.Submit(sql));
    }
    std::vector<Result<ServedAnswer>> results;
    for (auto& f : futures) results.push_back(f.get());
    return results;
  };

  std::vector<Result<ServedAnswer>> off = run(false);
  std::vector<Result<ServedAnswer>> on = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    ASSERT_EQ(off[i].ok(), on[i].ok()) << requests[i];
    if (off[i].ok()) {
      EXPECT_EQ(off[i]->value, on[i]->value) << requests[i];
      EXPECT_EQ(off[i]->stale, on[i]->stale) << requests[i];
    } else {
      EXPECT_EQ(off[i].status().code(), on[i].status().code()) << requests[i];
    }
  }
}

TEST_F(CoalescingTest, DisablingCoalescingComputesEveryRequest) {
  ServeOptions options = WindowOptions(milliseconds(100));
  options.enable_coalescing = false;
  options.retry.max_attempts = 1;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  constexpr size_t kRequests = 8;
  std::vector<std::future<Result<ServedAnswer>>> futures;
  for (size_t i = 0; i < kRequests; ++i) {
    futures.push_back(server.Submit(ctx_.workload[0]));
  }
  for (auto& f : futures) ASSERT_TRUE(f.get().ok());

  // No cache and no coalescing: every request is its own flight.
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.flights, kRequests);
  EXPECT_EQ(stats.coalesced_waiters, 0u);
  EXPECT_EQ(stats.max_flight_group, 1u);
}

// The context workload already gives its view the o_status attribute and
// the sum:o_totalprice measure, so this grouped AVG binds against the
// loaded bundle without having been registered verbatim.
constexpr char kGroupedAvg[] =
    "SELECT o_status, AVG(o_totalprice) FROM orders o GROUP BY o_status";

TEST_F(CoalescingTest, GroupedDuplicatesShareOneFlightAndOneRowSet) {
  QueryServer server(ctx_.store, ctx_.db->schema(),
                     WindowOptions(milliseconds(600)));
  ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);

  auto leader = server.Submit(kGroupedAvg);
  ASSERT_TRUE(SpinUntil([&] { return server.stats().flights >= 1; }));

  constexpr size_t kDuplicates = 5;
  std::vector<std::future<Result<ServedAnswer>>> waiters;
  for (size_t i = 0; i < kDuplicates; ++i) {
    waiters.push_back(server.Submit(kGroupedAvg));
  }
  ASSERT_TRUE(SpinUntil(
      [&] { return server.stats().coalesced_waiters >= kDuplicates; }))
      << "grouped duplicates did not join the in-flight computation";

  Result<ServedAnswer> led = leader.get();
  ASSERT_TRUE(led.ok()) << led.status();
  ASSERT_NE(led->rows, nullptr);
  EXPECT_EQ(led->value, static_cast<double>(led->rows->rows.size()));
  for (auto& w : waiters) {
    Result<ServedAnswer> got = w.get();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_TRUE(got->coalesced);
    // Every waiter receives the *identical* immutable row set — the same
    // object the leader computed, not a copy and not a recomputation.
    EXPECT_EQ(got->rows.get(), led->rows.get());
  }

  // The row set was computed exactly once despite 1 + kDuplicates
  // submissions, and the flight accounting conserves: every submission is
  // a flight, a coalesced waiter, a cache short-circuit, or expired.
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.grouped_queries, 1u);
  EXPECT_EQ(stats.flights + stats.coalesced_waiters +
                stats.cache_short_circuits + stats.expired_in_queue,
            stats.submitted);
}

TEST_F(CoalescingTest, GroupedAnswersEqualWithCoalescingOnAndOff) {
  // The grouped analogue of the scalar property test: coalescing may
  // change who computes a row set, never its contents.
  auto run = [&](bool coalesce) {
    ServeOptions options;
    options.num_threads = 4;
    options.enable_coalescing = coalesce;
    QueryServer server(ctx_.store, ctx_.db->schema(), options);
    std::vector<std::future<Result<ServedAnswer>>> futures;
    constexpr size_t kRequests = 12;
    for (size_t i = 0; i < kRequests; ++i) {
      futures.push_back(server.Submit(kGroupedAvg));
    }
    std::vector<Result<ServedAnswer>> results;
    for (auto& f : futures) results.push_back(f.get());
    return results;
  };

  std::vector<Result<ServedAnswer>> off = run(false);
  std::vector<Result<ServedAnswer>> on = run(true);
  ASSERT_EQ(off.size(), on.size());
  for (size_t i = 0; i < off.size(); ++i) {
    ASSERT_TRUE(off[i].ok() && on[i].ok());
    ASSERT_NE(off[i]->rows, nullptr);
    ASSERT_NE(on[i]->rows, nullptr);
    const aggregate::GroupedData& a = *off[i]->rows;
    const aggregate::GroupedData& b = *on[i]->rows;
    ASSERT_EQ(a.columns, b.columns);
    ASSERT_EQ(a.rows.size(), b.rows.size());
    for (size_t r = 0; r < a.rows.size(); ++r) {
      EXPECT_EQ(a.rows[r].suppressed, b.rows[r].suppressed);
      ASSERT_EQ(a.rows[r].values.size(), b.rows[r].values.size());
      for (size_t c = 0; c < a.rows[r].values.size(); ++c) {
        const Value& av = a.rows[r].values[c];
        const Value& bv = b.rows[r].values[c];
        ASSERT_EQ(av.is_null(), bv.is_null());
        if (av.is_null()) continue;
        if (av.is_numeric()) {
          EXPECT_DOUBLE_EQ(av.ToDouble(), bv.ToDouble());
        } else {
          EXPECT_EQ(av.AsString(), bv.AsString());
        }
      }
    }
  }
}

}  // namespace
}  // namespace viewrewrite
