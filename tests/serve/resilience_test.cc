#include <gtest/gtest.h>

#include <chrono>

#include "common/fault_injection.h"
#include "serve/query_server.h"
#include "serve/serve_test_util.h"

namespace viewrewrite {
namespace {

using std::chrono::microseconds;
using std::chrono::milliseconds;

/// Retry, circuit-breaker and stale-serving behavior of the QueryServer,
/// driven deterministically through injected faults.
class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = serve_testing::MakeServeContext(42, "resilience");
    ASSERT_NE(ctx_.store, nullptr);
  }
  void TearDown() override { FaultInjection::Instance().DisableAll(); }

  /// Fast retries so tests spend microseconds, not milliseconds.
  static ServeOptions FastRetryOptions() {
    ServeOptions options;
    options.num_threads = 1;
    options.retry.initial_backoff = microseconds(10);
    options.retry.max_backoff = microseconds(50);
    options.retry.jitter = 0;
    return options;
  }

  serve_testing::ServeContext ctx_;
};

TEST_F(ResilienceTest, RetryRecoversFromTransientFault) {
  ServeOptions options = FastRetryOptions();
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);
  auto got = server.Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->value, ctx_.Expected(0));
  EXPECT_FALSE(got->stale);
  EXPECT_EQ(got->attempts, 2u);  // first attempt hit the fault, retry won

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_EQ(stats.retry_successes, 1u);
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_EQ(stats.failed, 0u);
}

TEST_F(ResilienceTest, SemanticFailuresNeverRetry) {
  ServeOptions options = FastRetryOptions();
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  // No stored view covers a customer-only aggregate: NotFound, exactly
  // one attempt — retrying a semantic failure cannot change the outcome.
  auto got =
      server.Submit("SELECT COUNT(*) FROM customer c WHERE c.c_nation = 2")
          .get();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(server.stats().retries, 0u);
}

TEST_F(ResilienceTest, ExhaustedRetriesSurfaceTheTransientError) {
  ServeOptions options = FastRetryOptions();
  options.enable_cache = false;
  options.retry.max_attempts = 3;
  options.serve_stale = false;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  ScopedFault fault = ScopedFault::EveryN(faults::kServeAnswer, 1);
  auto got = server.Submit(ctx_.workload[0]).get();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);  // the injection
  EXPECT_EQ(FaultInjection::Instance().HitCount(faults::kServeAnswer), 3u);
  EXPECT_EQ(server.stats().retries, 2u);
}

TEST_F(ResilienceTest, BreakerTripsAfterThresholdThenFailsFast) {
  ServeOptions options = FastRetryOptions();
  options.enable_cache = false;
  options.serve_stale = false;
  options.retry.max_attempts = 1;  // isolate the breaker from retries
  options.answer_breaker.failure_threshold = 3;
  options.answer_breaker.open_duration = std::chrono::seconds(30);
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  ScopedFault fault = ScopedFault::EveryN(faults::kServeAnswer, 1);
  for (int i = 0; i < 3; ++i) {
    auto got = server.Submit(ctx_.workload[0]).get();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kInternal);
  }
  // Breaker is open: the next requests are rejected without touching the
  // answer path — the fault point's hit count stops moving.
  const uint64_t hits_at_trip =
      FaultInjection::Instance().HitCount(faults::kServeAnswer);
  EXPECT_EQ(hits_at_trip, 3u);
  for (int i = 0; i < 2; ++i) {
    auto got = server.Submit(ctx_.workload[0]).get();
    ASSERT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kUnavailable) << got.status();
  }
  EXPECT_EQ(FaultInjection::Instance().HitCount(faults::kServeAnswer),
            hits_at_trip);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.breaker_rejected, 2u);
}

TEST_F(ResilienceTest, BreakerHalfOpensAndRecovers) {
  ServeOptions options = FastRetryOptions();
  options.enable_cache = false;
  options.serve_stale = false;
  options.retry.max_attempts = 1;
  options.answer_breaker.failure_threshold = 1;
  options.answer_breaker.open_duration = std::chrono::nanoseconds(0);
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  {
    ScopedFault fault = ScopedFault::OnNth(faults::kServeAnswer, 1);
    auto tripped = server.Submit(ctx_.workload[0]).get();
    ASSERT_FALSE(tripped.ok());
  }
  // Cooldown of zero: the next request is admitted as the half-open
  // probe; with the fault disarmed it succeeds and closes the breaker.
  auto probe = server.Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(probe.ok()) << probe.status();
  EXPECT_EQ(probe->value, ctx_.Expected(0));

  auto after = server.Submit(ctx_.workload[1]).get();
  ASSERT_TRUE(after.ok()) << after.status();

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.breaker_trips, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(ResilienceTest, ServesStaleFromPreviousEpochWhenAnswerPathFails) {
  ServeOptions options = FastRetryOptions();
  options.retry.max_attempts = 2;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  // Warm the cache at epoch 0, then reload (same bundle, epoch 1): the
  // cached entry is no longer fresh, only a stale fallback.
  auto warm = server.Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE(server.Reload(ctx_.bundle_path).ok());
  EXPECT_EQ(server.epoch(), 1u);

  ScopedFault fault = ScopedFault::EveryN(faults::kServeAnswer, 1);
  auto degraded = server.Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded->stale);
  // The stale value is the previous epoch's exact answer — and since the
  // reloaded bundle holds identical cells, it equals the baseline too.
  EXPECT_EQ(degraded->value, warm->value);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.stale_served, 1u);
  EXPECT_EQ(stats.reloads, 1u);
}

TEST_F(ResilienceTest, StaleServingDisabledSurfacesTheError) {
  ServeOptions options = FastRetryOptions();
  options.retry.max_attempts = 2;
  options.serve_stale = false;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  auto warm = server.Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(warm.ok()) << warm.status();
  ASSERT_TRUE(server.Reload(ctx_.bundle_path).ok());

  ScopedFault fault = ScopedFault::EveryN(faults::kServeAnswer, 1);
  auto got = server.Submit(ctx_.workload[0]).get();
  ASSERT_FALSE(got.ok());
  EXPECT_EQ(got.status().code(), StatusCode::kInternal);
  EXPECT_EQ(server.stats().stale_served, 0u);
}

TEST_F(ResilienceTest, FailedReloadKeepsOldBundleServing) {
  ServeOptions options = FastRetryOptions();
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  {
    ScopedFault fault = ScopedFault::EveryN(faults::kServeReload, 1);
    Status reload = server.Reload(ctx_.bundle_path);
    ASSERT_FALSE(reload.ok());
  }
  EXPECT_EQ(server.epoch(), 0u);  // swap never happened

  auto got = server.Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->value, ctx_.Expected(0));

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.reload_failures, 1u);
  EXPECT_EQ(stats.reloads, 0u);
}

TEST_F(ResilienceTest, StatsStreamOutputMentionsResilienceCounters) {
  ServeOptions options = FastRetryOptions();
  QueryServer server(ctx_.store, ctx_.db->schema(), options);
  ASSERT_TRUE(server.Submit(ctx_.workload[0]).get().ok());
  std::ostringstream os;
  os << server.stats();
  const std::string text = os.str();
  EXPECT_NE(text.find("retries="), std::string::npos) << text;
  EXPECT_NE(text.find("breaker_trips="), std::string::npos) << text;
  EXPECT_NE(text.find("stale_served="), std::string::npos) << text;
  EXPECT_NE(text.find("epoch="), std::string::npos) << text;
}

}  // namespace
}  // namespace viewrewrite
