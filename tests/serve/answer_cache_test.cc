#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "serve/answer_cache.h"

namespace viewrewrite {
namespace {

TEST(AnswerCacheTest, GetMissThenHit) {
  AnswerCache cache(16, 4);
  EXPECT_FALSE(cache.Get("a").has_value());
  cache.Put("a", 1.5);
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, 1.5);
  EXPECT_EQ(hit->epoch, 0u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(AnswerCacheTest, PutRefreshesExistingKey) {
  AnswerCache cache(16, 1);
  cache.Put("a", 1.0);
  cache.Put("a", 2.0);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Get("a")->value, 2.0);
}

TEST(AnswerCacheTest, PutTagsEntryWithEpoch) {
  // A reload refreshes the same key under a newer epoch; the entry keeps
  // exactly one (value, epoch) pair — the latest.
  AnswerCache cache(16, 1);
  cache.Put("a", 1.0, /*epoch=*/0);
  cache.Put("a", 4.0, /*epoch=*/3);
  auto hit = cache.Get("a");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->value, 4.0);
  EXPECT_EQ(hit->epoch, 3u);
}

TEST(AnswerCacheTest, EvictsLeastRecentlyUsed) {
  // One shard of capacity 2 makes eviction order fully observable.
  AnswerCache cache(2, 1);
  cache.Put("a", 1.0);
  cache.Put("b", 2.0);
  ASSERT_TRUE(cache.Get("a").has_value());  // refresh "a"; "b" is now LRU
  cache.Put("c", 3.0);                      // evicts "b"
  EXPECT_TRUE(cache.Get("a").has_value());
  EXPECT_FALSE(cache.Get("b").has_value());
  EXPECT_TRUE(cache.Get("c").has_value());
  EXPECT_EQ(cache.size(), 2u);
}

TEST(AnswerCacheTest, CapacitySplitsAcrossShardsWithFloorOfOne) {
  // capacity 1 with 8 shards still holds one entry per shard.
  AnswerCache cache(1, 8);
  cache.Put("x", 1.0);
  EXPECT_TRUE(cache.Get("x").has_value());
}

TEST(AnswerCacheTest, ConcurrentMixedUseIsSafe) {
  AnswerCache cache(64, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 500; ++i) {
        const std::string key = "k" + std::to_string((t * 31 + i) % 100);
        if (auto hit = cache.Get(key)) {
          EXPECT_EQ(hit->value, static_cast<double>((t * 31 + i) % 100));
        }
        cache.Put(key, static_cast<double>((t * 31 + i) % 100));
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(cache.hits() + cache.misses(), 8u * 500u);
  EXPECT_LE(cache.size(), 64u);
}

}  // namespace
}  // namespace viewrewrite
