#include <gtest/gtest.h>
#include <unistd.h>

#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "engine/viewrewrite_engine.h"
#include "serve/synopsis_store.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good());
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFile(const std::string& path, const std::string& data) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(data.data(), static_cast<std::streamsize>(data.size()));
  ASSERT_TRUE(out.good());
}

class CorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing_support::MakeTestDatabase(7);
    engine_ = std::make_unique<ViewRewriteEngine>(
        *db_, PrivacyPolicy{"customer"}, EngineOptions{});
    std::vector<std::string> workload = {
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64",
        "SELECT SUM(o_totalprice) FROM orders o WHERE o.o_status = 'f'",
        "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
        "o.o_custkey AND c.c_nation = 1",
    };
    ASSERT_TRUE(engine_->Prepare(workload).ok());
    // Pid-unique: concurrent test processes must not publish over
    // each other's bundle (concurrent Saves to one path are
    // unsupported).
    path_ = ::testing::TempDir() + "corruption_bundle." +
            std::to_string(::getpid()) + ".vrsy";
    auto store = SynopsisStore::FromManager(engine_->views(), db_->schema());
    ASSERT_TRUE(store.ok()) << store.status();
    ASSERT_TRUE(store->Save(path_).ok());
    blob_ = ReadFile(path_);
    ASSERT_GT(blob_.size(), 64u);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ViewRewriteEngine> engine_;
  std::string path_;
  std::string blob_;
};

TEST_F(CorruptionTest, EveryFlippedByteFailsCleanly) {
  const std::string mutated_path = ::testing::TempDir() + "flipped.vrsy";
  // Stride through the file flipping one byte at a time. Every flip must
  // yield a non-OK status — never a crash, never a silently-wrong load.
  // Offsets 6-7 are the reserved header halfword, the only bytes the
  // format deliberately ignores.
  for (size_t pos = 0; pos < blob_.size(); pos += 7) {
    if (pos == 6 || pos == 7) continue;
    std::string mutated = blob_;
    mutated[pos] = static_cast<char>(mutated[pos] ^ 0x5a);
    WriteFile(mutated_path, mutated);
    auto loaded = SynopsisStore::Load(mutated_path, db_->schema());
    EXPECT_FALSE(loaded.ok()) << "flip at offset " << pos
                              << " loaded successfully";
  }
}

TEST_F(CorruptionTest, ChecksumMismatchIsTypedCorruption) {
  // Flip a byte deep inside a section payload (past the 8-byte file
  // header and the section frame) so the CRC check is what catches it.
  std::string mutated = blob_;
  mutated[blob_.size() / 2] ^= 0x01;
  const std::string mutated_path = ::testing::TempDir() + "crc.vrsy";
  WriteFile(mutated_path, mutated);
  auto loaded = SynopsisStore::Load(mutated_path, db_->schema());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, EveryTruncationFailsCleanly) {
  const std::string mutated_path = ::testing::TempDir() + "truncated.vrsy";
  const size_t sizes[] = {0, 1, 3, 7, 8, 11, 20, blob_.size() / 2,
                          blob_.size() - 1};
  for (size_t n : sizes) {
    WriteFile(mutated_path, blob_.substr(0, n));
    auto loaded = SynopsisStore::Load(mutated_path, db_->schema());
    EXPECT_FALSE(loaded.ok()) << "truncation to " << n << " bytes loaded";
  }
}

TEST_F(CorruptionTest, NotABundleIsCorruption) {
  const std::string garbage_path = ::testing::TempDir() + "garbage.vrsy";
  WriteFile(garbage_path, "this is definitely not a synopsis bundle");
  auto loaded = SynopsisStore::Load(garbage_path, db_->schema());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
}

TEST_F(CorruptionTest, MissingFileIsNotFound) {
  auto loaded = SynopsisStore::Load(::testing::TempDir() + "no_such.vrsy",
                                    db_->schema());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST_F(CorruptionTest, ServeLoadFaultPointInjects) {
  ScopedFault fault = ScopedFault::OnNth(
      faults::kServeLoad, 1, Status::ExecutionError("injected load failure"));
  auto loaded = SynopsisStore::Load(path_, db_->schema());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kExecutionError);
  // The very next load (fault disarmed after firing once) succeeds.
  auto retry = SynopsisStore::Load(path_, db_->schema());
  EXPECT_TRUE(retry.ok()) << retry.status();
}

TEST_F(CorruptionTest, IntactBundleStillLoads) {
  auto loaded = SynopsisStore::Load(path_, db_->schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->NumViews(), engine_->views().NumPublished());
}

}  // namespace
}  // namespace viewrewrite
