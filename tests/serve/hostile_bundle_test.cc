// Hostile .vrsy bundles: the loader must never trust a declared length.
// Each case hand-crafts bundle bytes whose headers lie — element counts
// past EOF, counts whose byte size wraps uint64, files past the arena
// budget — and asserts a typed refusal with no crash and no attempt to
// materialize the declared sizes.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "common/crc32.h"
#include "common/limits.h"
#include "serve/synopsis_store.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

void AppendU16(std::string* out, uint16_t v) {
  for (int i = 0; i < 2; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}
void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}
void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(char((v >> (8 * i)) & 0xFF));
}

std::string FileHeader() {
  std::string out = "VRSY";
  AppendU16(&out, 1);  // format version
  AppendU16(&out, 0);  // reserved
  return out;
}

std::string WriteBundle(const std::string& name, const std::string& bytes) {
  std::string path = ::testing::TempDir() + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  EXPECT_TRUE(out.good());
  return path;
}

Status LoadStatus(const std::string& path,
                  const ResourceLimits& limits = ResourceLimits::Defaults()) {
  Schema schema = testing_support::MakeTestSchema();
  auto store = SynopsisStore::Load(path, schema, limits);
  return store.ok() ? Status::OK() : store.status();
}

TEST(HostileBundleTest, SectionDeclaringTwoToTheSixtyDoublesRefused) {
  // A section whose payload opens with a count of 2^60 doubles. The old
  // bounds check computed n * 8, which wraps to 0 for n = 2^61 — this
  // count is chosen so both the wrap and the straight comparison paths
  // must refuse.
  std::string payload;
  AppendU64(&payload, uint64_t{1} << 60);
  payload += "xyz";
  std::string bundle = FileHeader();
  AppendU32(&bundle, 'V');
  AppendU64(&bundle, payload.size());
  bundle += payload;
  // Valid CRC, so the refusal provably comes from the bounds check on the
  // declared count, not from checksum verification.
  AppendU32(&bundle, Crc32(payload.data(), payload.size()));
  Status st = LoadStatus(WriteBundle("huge_double_count.vrsy", bundle));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

TEST(HostileBundleTest, ElementCountWhoseByteSizeWrapsUint64Refused) {
  // n = 2^61: n * 8 == 2^64 == 0 (mod 2^64). A `Need(n * 8)` style check
  // passes vacuously; the divide-based check must still refuse.
  std::string payload;
  AppendU64(&payload, uint64_t{1} << 61);
  std::string bundle = FileHeader();
  AppendU32(&bundle, 'V');
  AppendU64(&bundle, payload.size());
  bundle += payload;
  AppendU32(&bundle, Crc32(payload.data(), payload.size()));
  Status st = LoadStatus(WriteBundle("wrapping_count.vrsy", bundle));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

TEST(HostileBundleTest, SectionLengthPastEofRefused) {
  std::string bundle = FileHeader();
  AppendU32(&bundle, 'H');
  AppendU64(&bundle, uint64_t{1} << 60);  // payload "length"
  bundle += "tiny";
  Status st = LoadStatus(WriteBundle("section_past_eof.vrsy", bundle));
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kCorruption) << st.ToString();
}

TEST(HostileBundleTest, FileLargerThanArenaBudgetRefusedBeforeBuffering) {
  ResourceLimits limits;
  limits.max_arena_bytes = 1024;
  std::string bundle = FileHeader();
  bundle.append(4096, '\0');
  Status st = LoadStatus(WriteBundle("oversized_file.vrsy", bundle), limits);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kResourceExhausted) << st.ToString();
}

TEST(HostileBundleTest, BadMagicRefused) {
  Status st = LoadStatus(WriteBundle("bad_magic.vrsy",
                                     std::string("NOPE") + FileHeader()));
  ASSERT_FALSE(st.ok());
}

TEST(HostileBundleTest, EmptyFileRefused) {
  Status st = LoadStatus(WriteBundle("empty.vrsy", ""));
  ASSERT_FALSE(st.ok());
}

}  // namespace
}  // namespace viewrewrite
