#include <gtest/gtest.h>

#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "serve/query_server.h"
#include "serve/serve_test_util.h"

namespace viewrewrite {
namespace {

/// Hot reload under concurrent load: swapping bundles mid-traffic loses
/// no in-flight query, and every answer is exactly one of the two
/// bundles' values — never a blend.
class ReloadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Two publications of the same workload with different noise seeds:
    // same schema fingerprint, distinguishable answers.
    a_ = serve_testing::MakeServeContext(42, "reload_a");
    b_ = serve_testing::MakeServeContext(1042, "reload_b");
    ASSERT_NE(a_.store, nullptr);
    ASSERT_NE(b_.store, nullptr);
  }

  serve_testing::ServeContext a_;
  serve_testing::ServeContext b_;
};

TEST_F(ReloadTest, MidTrafficSwapLosesNothingAndNeverBlendsBundles) {
  std::vector<double> expected_a, expected_b;
  bool bundles_differ = false;
  for (size_t i = 0; i < a_.workload.size(); ++i) {
    expected_a.push_back(a_.Expected(i));
    expected_b.push_back(b_.Expected(i));
    if (expected_a[i] != expected_b[i]) bundles_differ = true;
  }
  // If every noisy answer collided the test would be vacuous.
  ASSERT_TRUE(bundles_differ);

  ServeOptions options;
  options.num_threads = 4;
  options.queue_capacity = 8192;
  QueryServer server(a_.store, a_.db->schema(), options);

  constexpr size_t kThreads = 4;
  constexpr size_t kPerThread = 150;
  std::vector<std::vector<std::future<Result<ServedAnswer>>>> futures(
      kThreads);
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        futures[t].push_back(
            server.Submit(a_.workload[(t + i) % a_.workload.size()]));
      }
    });
  }
  // Swap to bundle B while the submitters are hammering.
  Status reload = server.Reload(b_.bundle_path);
  for (std::thread& t : submitters) t.join();
  ASSERT_TRUE(reload.ok()) << reload;
  EXPECT_EQ(server.epoch(), 1u);

  size_t answered = 0;
  for (size_t t = 0; t < kThreads; ++t) {
    for (size_t i = 0; i < futures[t].size(); ++i) {
      Result<ServedAnswer> got = futures[t][i].get();
      ASSERT_TRUE(got.ok()) << got.status();
      const size_t qi = (t + i) % a_.workload.size();
      EXPECT_TRUE(got->value == expected_a[qi] ||
                  got->value == expected_b[qi])
          << "blended or foreign value " << got->value << " for query " << qi;
      ++answered;
    }
  }
  EXPECT_EQ(answered, kThreads * kPerThread);

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kThreads * kPerThread);
  EXPECT_EQ(stats.completed, kThreads * kPerThread);  // nothing lost
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.reloads, 1u);

  // Post-swap, the server answers exactly like a cold server on bundle B.
  QueryServer cold(b_.store, b_.db->schema(), ServeOptions{});
  for (size_t i = 0; i < a_.workload.size(); ++i) {
    auto hot = server.Answer(a_.workload[i]);
    auto ref = cold.Answer(a_.workload[i]);
    ASSERT_TRUE(hot.ok()) << hot.status();
    ASSERT_TRUE(ref.ok()) << ref.status();
    EXPECT_FALSE(hot->stale);
    EXPECT_EQ(hot->value, ref->value) << a_.workload[i];
    EXPECT_EQ(hot->value, expected_b[i]) << a_.workload[i];
  }
}

TEST_F(ReloadTest, ReloadFromInProcessStoreBumpsEpoch) {
  QueryServer server(a_.store, a_.db->schema(), ServeOptions{});
  EXPECT_EQ(server.epoch(), 0u);
  ASSERT_TRUE(server.Reload(b_.store).ok());
  EXPECT_EQ(server.epoch(), 1u);
  auto got = server.Answer(a_.workload[0]);
  ASSERT_TRUE(got.ok()) << got.status();
  EXPECT_EQ(got->value, b_.Expected(0));
}

TEST_F(ReloadTest, SchemaDriftIsRejected) {
  QueryServer server(a_.store, a_.db->schema(), ServeOptions{});
  Status null_reload = server.Reload(std::shared_ptr<const SynopsisStore>());
  EXPECT_FALSE(null_reload.ok());
  EXPECT_EQ(server.stats().reload_failures, 1u);
  EXPECT_EQ(server.epoch(), 0u);
}

}  // namespace
}  // namespace viewrewrite
