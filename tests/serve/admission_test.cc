// Admission control at QueryServer::Submit: SQL over the configured
// max_sql_bytes must be rejected with kResourceExhausted *before* it
// occupies a queue slot or a worker parses a byte of it, and the
// rejection must be observable in ServeStats::rejected_oversized.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "engine/viewrewrite_engine.h"
#include "serve/query_server.h"
#include "serve/synopsis_store.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing_support::MakeTestDatabase(29, 40);
    engine_ = std::make_unique<ViewRewriteEngine>(
        *db_, PrivacyPolicy{"customer"}, EngineOptions{});
    workload_ = {
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64",
        "SELECT COUNT(*) FROM orders o WHERE o.o_status = 'f'",
    };
    ASSERT_TRUE(engine_->Prepare(workload_).ok());
    auto snapshot =
        SynopsisStore::FromManager(engine_->views(), db_->schema());
    ASSERT_TRUE(snapshot.ok()) << snapshot.status();
    store_ = std::make_shared<SynopsisStore>(std::move(*snapshot));
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<ViewRewriteEngine> engine_;
  std::vector<std::string> workload_;
  std::shared_ptr<const SynopsisStore> store_;
};

TEST_F(AdmissionTest, OversizedSqlRejectedBeforeQueueing) {
  ServeOptions options;
  options.num_threads = 2;
  options.limits.max_sql_bytes = 256;
  QueryServer server(store_, db_->schema(), options);

  std::string big = workload_[0] + " -- " + std::string(4096, 'x');
  auto future = server.Submit(big, {});
  Result<ServedAnswer> answer = future.get();
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted)
      << answer.status();

  ServeStats stats = server.stats();
  EXPECT_EQ(stats.rejected_oversized, 1u);
  EXPECT_EQ(stats.rejected, 1u);
  // Never entered the pipeline: not submitted, not failed.
  EXPECT_EQ(stats.submitted, 0u);
  EXPECT_EQ(stats.failed, 0u);

  // A normal-size query on the same server still answers.
  auto ok_future = server.Submit(workload_[0], {});
  Result<ServedAnswer> ok_answer = ok_future.get();
  EXPECT_TRUE(ok_answer.ok()) << ok_answer.status();
  server.Shutdown();
}

TEST_F(AdmissionTest, DefaultLimitAdmitsWorkloadQueries) {
  ServeOptions options;
  options.num_threads = 2;
  QueryServer server(store_, db_->schema(), options);
  for (const std::string& sql : workload_) {
    auto answer = server.Submit(sql, {}).get();
    EXPECT_TRUE(answer.ok()) << answer.status();
  }
  EXPECT_EQ(server.stats().rejected_oversized, 0u);
  server.Shutdown();
}

TEST_F(AdmissionTest, WorkerParsesUnderServeLimits) {
  // A query inside the byte cap but over a tiny AST-depth budget must
  // come back as kResourceExhausted from the worker's limit-aware parse.
  ServeOptions options;
  options.num_threads = 2;
  options.limits.max_ast_depth = 8;
  QueryServer server(store_, db_->schema(), options);

  std::string nested = "SELECT COUNT(*) FROM orders o WHERE ";
  for (int i = 0; i < 30; ++i) nested += "(";
  nested += "o.o_totalprice >= 64";
  for (int i = 0; i < 30; ++i) nested += ")";
  auto answer = server.Submit(nested, {}).get();
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted)
      << answer.status();
  server.Shutdown();
}

}  // namespace
}  // namespace viewrewrite
