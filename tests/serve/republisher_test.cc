#include "serve/republisher.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>

#include "common/fault_injection.h"
#include "serve/query_server.h"
#include "serve/serve_test_util.h"
#include "serve/synopsis_store.h"

namespace viewrewrite {
namespace {

/// Synopsis lifecycle driver: delta republish generations, cross-epoch
/// budget composition, generation metadata in the bundle, the staleness
/// policy, and the refund boundary (before vs after the durable save).
class RepublisherTest : public ::testing::Test {
 protected:
  void SetUp() override { SetUpWithLifetime(18.0); }

  void SetUpWithLifetime(double lifetime_epsilon,
                         ServeOptions serve_options = ServeOptions{}) {
    // The answer cache pins the outdated bit at Put time (by design; the
    // eviction lag retires old entries). These tests watch the staleness
    // policy react generation by generation, so they bypass the cache.
    serve_options.enable_cache = false;
    ctx_ = serve_testing::MakeServeContext(42, "republisher",
                                           lifetime_epsilon);
    ASSERT_NE(ctx_.store, nullptr);
    server_ = std::make_unique<QueryServer>(ctx_.store, ctx_.db->schema(),
                                            serve_options);
    options_.bundle_path = ctx_.bundle_path;
    options_.generation_epsilon = 0.5;
    options_.max_attempts = 1;
    republisher_ = std::make_unique<Republisher>(
        ctx_.engine.get(), ctx_.db->schema(), server_.get(), options_);
  }

  void TearDown() override {
    republisher_.reset();
    server_.reset();
    FaultInjection::Instance().DisableAll();
    if (!ctx_.bundle_path.empty()) std::remove(ctx_.bundle_path.c_str());
  }

  double Spent() { return ctx_.engine->stats().budget_spent_epsilon; }

  serve_testing::ServeContext ctx_;
  std::unique_ptr<QueryServer> server_;
  RepublisherOptions options_;
  std::unique_ptr<Republisher> republisher_;
};

TEST_F(RepublisherTest, PublishesGenerationMetadataAndSwapsTheServer) {
  const uint64_t epoch_before = server_->epoch();
  const double spent_before = Spent();

  Result<RepublishReport> report = republisher_->RepublishNow({"orders"});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->generation, 1u);
  EXPECT_FALSE(report->rebuilt.empty());
  EXPECT_TRUE(report->failed.empty());
  EXPECT_NEAR(report->epsilon_spent, options_.generation_epsilon, 1e-9);
  EXPECT_GT(report->epoch_after, epoch_before);
  EXPECT_EQ(republisher_->generation(), 1u);

  // Cross-epoch composition: the generation's spend lands on the one
  // lifetime ledger.
  EXPECT_NEAR(Spent(), spent_before + options_.generation_epsilon, 1e-9);

  // The server swapped to the new generation and answers from it,
  // bit-identical to the engine's post-rebuild cells.
  EXPECT_EQ(server_->stats().generation, 1u);
  for (size_t i = 0; i < ctx_.workload.size(); ++i) {
    Result<ServedAnswer> got = server_->Submit(ctx_.workload[i]).get();
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(got->value, ctx_.Expected(i)) << "query " << i;
    EXPECT_EQ(got->generation, 1u);
    EXPECT_FALSE(got->outdated);
  }

  // The durable bundle carries the generation metadata and per-view
  // lifecycle, so a restarted process resumes at the right epoch.
  Result<SynopsisStore> loaded =
      SynopsisStore::Load(ctx_.bundle_path, ctx_.db->schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->generation(), 1u);
  EXPECT_EQ(loaded->generation_info().parent_epoch, epoch_before);
  EXPECT_NEAR(loaded->generation_info().generation_epsilon,
              options_.generation_epsilon, 1e-9);
  ASSERT_EQ(loaded->generation_info().changed_relations.size(), 1u);
  EXPECT_EQ(loaded->generation_info().changed_relations[0], "orders");
  for (const std::string& sig : report->rebuilt) {
    auto it = loaded->lifecycle().find(sig);
    ASSERT_NE(it, loaded->lifecycle().end()) << sig;
    EXPECT_EQ(it->second.data_generation, 1u);
    EXPECT_EQ(loaded->OutdatedGenerations(sig), 0u);
  }
}

TEST_F(RepublisherTest, FailedRebuildRefundsFlagsOutdatedAndHealsLater) {
  const double spent_before = Spent();
  {
    // Every affected view's rebuild fails this generation.
    ScopedFault fault = ScopedFault::EveryN(faults::kRepublishBuild, 1);
    Result<RepublishReport> report = republisher_->RepublishNow({"orders"});
    // Per-view failures degrade the generation, they do not abort it.
    ASSERT_TRUE(report.ok()) << report.status();
    EXPECT_TRUE(report->rebuilt.empty());
    EXPECT_FALSE(report->failed.empty());
    // Refunded per view: no net spend from a generation that rebuilt
    // nothing.
    EXPECT_NEAR(report->epsilon_spent, 0.0, 1e-9);
    EXPECT_NEAR(Spent(), spent_before, 1e-9);
  }

  // The bundle flags the views outdated-since generation 1; with the
  // default TTL of 0 every served answer through them carries the flag.
  Result<SynopsisStore> loaded =
      SynopsisStore::Load(ctx_.bundle_path, ctx_.db->schema());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->generation(), 1u);
  Result<ServedAnswer> flagged = server_->Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(flagged.ok()) << flagged.status();
  EXPECT_TRUE(flagged->outdated);
  // Outdated is provenance, not degradation: the value still serves and
  // the answer is not stale.
  EXPECT_FALSE(flagged->stale);
  EXPECT_EQ(flagged->value, ctx_.Expected(0));
  EXPECT_GT(server_->stats().outdated_served, 0u);

  // A later clean generation heals: rebuild succeeds, the outdated flag
  // clears, answers are unflagged again.
  Result<RepublishReport> healed = republisher_->RepublishNow({"orders"});
  ASSERT_TRUE(healed.ok()) << healed.status();
  EXPECT_FALSE(healed->rebuilt.empty());
  Result<SynopsisStore> after =
      SynopsisStore::Load(ctx_.bundle_path, ctx_.db->schema());
  ASSERT_TRUE(after.ok()) << after.status();
  for (const std::string& sig : healed->rebuilt) {
    EXPECT_EQ(after->OutdatedGenerations(sig), 0u) << sig;
  }
  Result<ServedAnswer> fresh = server_->Submit(ctx_.workload[0]).get();
  ASSERT_TRUE(fresh.ok()) << fresh.status();
  EXPECT_FALSE(fresh->outdated);
  EXPECT_EQ(fresh->value, ctx_.Expected(0));
}

TEST_F(RepublisherTest, OutdatedTtlToleratesRecentStaleness) {
  // A TTL of 2 generations means "answerable and recent enough": views
  // outdated by 1-2 generations serve unflagged; the third pushes them
  // over the policy line.
  ServeOptions serve_options;
  serve_options.outdated_ttl_generations = 2;
  SetUpWithLifetime(18.0, serve_options);

  ScopedFault fault = ScopedFault::EveryN(faults::kRepublishBuild, 1);
  for (int generation = 1; generation <= 3; ++generation) {
    Result<RepublishReport> report = republisher_->RepublishNow({"orders"});
    ASSERT_TRUE(report.ok()) << report.status();
    Result<ServedAnswer> got = server_->Submit(ctx_.workload[0]).get();
    ASSERT_TRUE(got.ok()) << got.status();
    // outdated_since stays pinned at generation 1, so the view is
    // `generation` generations out of date.
    EXPECT_EQ(got->outdated, generation > 2) << "generation " << generation;
  }
}

TEST_F(RepublisherTest, LifetimeBudgetHardFailsBeforeOverspending) {
  // Reserve of 0.8 beyond the initial publication funds exactly one 0.5
  // generation; the second must hard-fail with PrivacyError before
  // touching the ledger, with no retry and no breaker trip (the rebuild
  // machinery is healthy — the refusal is semantic).
  SetUpWithLifetime(8.8);
  options_.max_attempts = 3;
  republisher_ = std::make_unique<Republisher>(
      ctx_.engine.get(), ctx_.db->schema(), server_.get(), options_);

  ASSERT_TRUE(republisher_->RepublishNow({"orders"}).ok());
  const double spent_after_first = Spent();

  Result<RepublishReport> refused = republisher_->RepublishNow({"orders"});
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kPrivacyError);
  EXPECT_NEAR(Spent(), spent_after_first, 1e-9);
  EXPECT_LE(Spent(), ctx_.engine->stats().budget_total_epsilon + 1e-9);

  RepublisherStats stats = republisher_->stats();
  EXPECT_EQ(stats.generations_published, 1u);
  // No retry on a semantic refusal: exactly one failed attempt.
  EXPECT_EQ(stats.generations_attempted, 2u);
  EXPECT_EQ(stats.breaker_trips, 0u);
  // The old generation keeps serving.
  EXPECT_TRUE(server_->Submit(ctx_.workload[0]).get().ok());
}

TEST_F(RepublisherTest, SaveFailureRefundsButSwapFailureDoesNot) {
  // The refund boundary is the rename inside Save. A generation killed
  // before it never becomes observable -> full refund. A generation
  // killed after it (swap fault) is durably on disk -> the spend stands,
  // and the bundle is legitimately ahead of the serving process.
  const double spent_before = Spent();
  {
    ScopedFault fault = ScopedFault::OnNth(faults::kServeSave, 1);
    ASSERT_FALSE(republisher_->RepublishNow({"orders"}).ok());
  }
  EXPECT_NEAR(Spent(), spent_before, 1e-9);

  {
    ScopedFault fault = ScopedFault::OnNth(faults::kRepublishSwap, 1);
    ASSERT_FALSE(republisher_->RepublishNow({"orders"}).ok());
  }
  EXPECT_NEAR(Spent(), spent_before + options_.generation_epsilon, 1e-9);
  EXPECT_EQ(server_->stats().generation, 0u);  // swap never happened

  // The file is ahead of the serving process: the next Reload catches up
  // to the saved-but-unswapped generation.
  Result<SynopsisStore> on_disk =
      SynopsisStore::Load(ctx_.bundle_path, ctx_.db->schema());
  ASSERT_TRUE(on_disk.ok()) << on_disk.status();
  const uint64_t saved_generation = on_disk->generation();
  EXPECT_GT(saved_generation, 0u);
  ASSERT_TRUE(server_->Reload(ctx_.bundle_path).ok());
  EXPECT_EQ(server_->stats().generation, saved_generation);
}

TEST_F(RepublisherTest, BreakerTripsOnRepeatedFaultsAndFailsFast) {
  options_.max_attempts = 3;
  options_.retry.max_attempts = 3;
  options_.retry.initial_backoff = std::chrono::microseconds(10);
  options_.breaker.failure_threshold = 2;
  options_.breaker.open_duration = std::chrono::seconds(30);
  republisher_ = std::make_unique<Republisher>(
      ctx_.engine.get(), ctx_.db->schema(), server_.get(), options_);

  ScopedFault fault = ScopedFault::EveryN(faults::kServeRepublish, 1);
  // Two failed attempts trip the breaker; the third is rejected fast.
  Result<RepublishReport> first = republisher_->RepublishNow({"orders"});
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.status().code(), StatusCode::kUnavailable);

  // While open, calls fail fast without burning an attempt.
  Result<RepublishReport> rejected = republisher_->RepublishNow({"orders"});
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kUnavailable);

  RepublisherStats stats = republisher_->stats();
  EXPECT_EQ(stats.generations_attempted, 2u);
  EXPECT_GE(stats.breaker_trips, 1u);
  EXPECT_GE(stats.breaker_rejected, 2u);
  EXPECT_EQ(stats.generations_published, 0u);
}

TEST_F(RepublisherTest, BackgroundThreadPublishesOnNotify) {
  republisher_->Start();
  republisher_->NotifyChanged({"orders"});
  // Bounded poll: the background thread picks the notification up and
  // publishes a generation.
  for (int i = 0; i < 2000 && republisher_->generation() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  republisher_->Stop();
  EXPECT_GE(republisher_->generation(), 1u);
  EXPECT_GE(republisher_->stats().notifications, 1u);
  EXPECT_GE(server_->stats().generation, 1u);
}

}  // namespace
}  // namespace viewrewrite
