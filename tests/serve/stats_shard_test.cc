#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "serve/answer_cache.h"
#include "serve/query_server.h"
#include "serve/serve_stats.h"
#include "serve/serve_test_util.h"

namespace viewrewrite {
namespace {

/// Sharded statistics: per-thread counter cells lose nothing under
/// concurrency (totals are exact), writes actually spread across cells,
/// and the per-stripe answer-cache counters sum to the aggregate view.
class StatsShardTest : public ::testing::Test {};

TEST_F(StatsShardTest, TotalsAreExactUnderConcurrentWriters) {
  ShardedServeCounters counters(8);
  constexpr size_t kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (uint64_t i = 0; i < kPerThread; ++i) {
        counters.Add(ServeCounter::kSubmitted);
        if (i % 3 == 0) counters.Add(ServeCounter::kCompleted, 2);
      }
    });
  }
  go.store(true, std::memory_order_release);
  for (std::thread& t : threads) t.join();

  // Every increment landed in exactly one cell; the sum is exact, not
  // approximate — sharding trades contention, never accuracy.
  EXPECT_EQ(counters.Total(ServeCounter::kSubmitted), kThreads * kPerThread);
  EXPECT_EQ(counters.Total(ServeCounter::kCompleted),
            kThreads * ((kPerThread + 2) / 3) * 2);
  uint64_t per_cell_sum = 0;
  for (uint64_t v : counters.PerCell(ServeCounter::kSubmitted)) {
    per_cell_sum += v;
  }
  EXPECT_EQ(per_cell_sum, counters.Total(ServeCounter::kSubmitted));
}

TEST_F(StatsShardTest, WritesSpreadAcrossCells) {
  // Thread slots are assigned as consecutive integers on first use, so 8
  // fresh threads over 8 cells land on 8 distinct cells: the sharding
  // demonstrably distributes writers instead of funneling them into one.
  ShardedServeCounters counters(8);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&] { counters.Add(ServeCounter::kSubmitted); });
  }
  for (std::thread& t : threads) t.join();
  size_t nonzero = 0;
  for (uint64_t v : counters.PerCell(ServeCounter::kSubmitted)) {
    if (v > 0) ++nonzero;
  }
  EXPECT_EQ(nonzero, 8u);
  EXPECT_EQ(counters.Total(ServeCounter::kSubmitted), 8u);
}

TEST_F(StatsShardTest, FlightGroupMaximumIsTheGlobalMaximum) {
  ShardedServeCounters counters(4);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      counters.NoteFlightGroup(t + 1);
      counters.NoteFlightGroup(1);  // later smaller values never regress it
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counters.MaxFlightGroup(), 8u);
}

TEST_F(StatsShardTest, SingleCellStillCountsEverything) {
  ShardedServeCounters counters(1);  // degenerate but legal
  std::vector<std::thread> threads;
  for (size_t t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) counters.Add(ServeCounter::kRetries);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counters.Total(ServeCounter::kRetries), 4000u);
  EXPECT_EQ(counters.num_cells(), 1u);
}

TEST_F(StatsShardTest, CacheStripeCountersSumToAggregates) {
  AnswerCache cache(/*capacity=*/8, /*shards=*/4);
  // Fill past capacity so every stripe sees hits, misses and evictions.
  for (int i = 0; i < 64; ++i) {
    const std::string key = "k" + std::to_string(i);
    (void)cache.Get(key);          // miss
    cache.Put(key, i, /*epoch=*/0);
    (void)cache.Get(key);          // hit (just inserted, still resident)
  }
  uint64_t hits = 0, misses = 0, evictions = 0;
  size_t entries = 0;
  for (const CacheStripeStats& s : cache.StripeStatsSnapshot()) {
    hits += s.hits;
    misses += s.misses;
    evictions += s.evictions;
    entries += s.entries;
  }
  EXPECT_EQ(hits, cache.hits());
  EXPECT_EQ(misses, cache.misses());
  EXPECT_EQ(evictions, cache.evictions());
  EXPECT_EQ(entries, cache.size());
  EXPECT_EQ(misses, 64u);
  EXPECT_EQ(hits, 64u);
  EXPECT_GT(evictions, 0u);          // capacity 8 << 64 inserts
  EXPECT_LE(entries, 8u);            // never over per-stripe budget
  EXPECT_EQ(cache.num_stripes(), 4u);
}

/// End-to-end: a server hammered from many threads keeps exact books.
class StatsShardServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = serve_testing::MakeServeContext(42, "stats_shard");
    ASSERT_NE(ctx_.store, nullptr);
  }
  serve_testing::ServeContext ctx_;
};

TEST_F(StatsShardServerTest, ConcurrentLoadKeepsCountersConsistent) {
  ServeOptions options;
  options.num_threads = 8;
  options.queue_capacity = 8192;
  options.stats_cells = 16;
  QueryServer server(ctx_.store, ctx_.db->schema(), options);

  constexpr size_t kSubmitters = 4;
  constexpr size_t kPerThread = 300;
  std::vector<std::vector<std::future<Result<ServedAnswer>>>> futures(
      kSubmitters);
  std::vector<std::thread> threads;
  for (size_t t = 0; t < kSubmitters; ++t) {
    threads.emplace_back([&, t] {
      for (size_t i = 0; i < kPerThread; ++i) {
        futures[t].push_back(
            server.Submit(ctx_.workload[i % ctx_.workload.size()]));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  size_t ok = 0;
  for (auto& per_thread : futures) {
    for (auto& f : per_thread) {
      if (f.get().ok()) ++ok;
    }
  }
  server.Shutdown();
  EXPECT_EQ(ok, kSubmitters * kPerThread);

  // The sharded cells must aggregate to exact totals: every accepted
  // request is accounted once in completed/failed and once in exactly
  // one resolution channel.
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.submitted, kSubmitters * kPerThread);
  EXPECT_EQ(stats.completed, kSubmitters * kPerThread);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_EQ(stats.flights + stats.coalesced_waiters +
                stats.cache_short_circuits + stats.expired_in_queue,
            stats.submitted);
  EXPECT_EQ(stats.cache_stripes, options.cache_shards);
  EXPECT_GE(stats.max_flight_group, 1u);
}

}  // namespace
}  // namespace viewrewrite
