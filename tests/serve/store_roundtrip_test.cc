#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "datagen/census.h"
#include "datagen/tpch.h"
#include "engine/viewrewrite_engine.h"
#include "rewrite/rewriter.h"
#include "serve/synopsis_store.h"
#include "sql/parser.h"
#include "workload/workload.h"

namespace viewrewrite {
namespace {

std::vector<std::string> SmallWorkload(int w, size_t n, uint64_t seed = 11) {
  WorkloadGenerator gen(1, seed);
  auto queries = gen.Generate(w);
  EXPECT_TRUE(queries.ok());
  std::vector<std::string> sql;
  for (size_t i = 0; i < std::min(n, queries->size()); ++i) {
    sql.push_back((*queries)[i].sql);
  }
  return sql;
}

/// Save -> Load -> Answer must reproduce the in-memory noisy answers
/// *bit-identically*: once published, the noisy cells are plain data, and
/// the bundle stores doubles by bit pattern.
void ExpectBitIdenticalRoundTrip(ViewRewriteEngine& engine,
                                 const Schema& schema,
                                 const std::vector<std::string>& workload,
                                 const std::string& path) {
  auto in_memory = SynopsisStore::FromManager(engine.views(), schema);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status();
  ASSERT_TRUE(in_memory->Save(path).ok());
  auto loaded = SynopsisStore::Load(path, schema);
  ASSERT_TRUE(loaded.ok()) << loaded.status();

  EXPECT_EQ(loaded->NumViews(), in_memory->NumViews());
  EXPECT_EQ(loaded->schema_fingerprint(), in_memory->schema_fingerprint());
  EXPECT_EQ(loaded->ledger().total_epsilon, in_memory->ledger().total_epsilon);
  EXPECT_EQ(loaded->ledger().spent_epsilon, in_memory->ledger().spent_epsilon);
  EXPECT_EQ(loaded->ledger().entries, in_memory->ledger().entries);

  Rewriter rewriter(schema);
  size_t answered = 0;
  for (size_t i = 0; i < workload.size(); ++i) {
    if (!engine.report().query_status[i].ok()) continue;
    Result<double> engine_answer = engine.NoisyAnswer(i);
    ASSERT_TRUE(engine_answer.ok()) << workload[i] << "\n"
                                    << engine_answer.status();

    // The serve path re-parses and re-rewrites from SQL, exactly as a
    // QueryServer would.
    auto stmt = ParseSelect(workload[i]);
    ASSERT_TRUE(stmt.ok());
    auto rq = rewriter.Rewrite(**stmt);
    ASSERT_TRUE(rq.ok());

    auto mem_bound = in_memory->Bind(*rq, nullptr);
    ASSERT_TRUE(mem_bound.ok()) << workload[i] << "\n" << mem_bound.status();
    auto mem_answer = in_memory->Answer(*mem_bound);
    ASSERT_TRUE(mem_answer.ok()) << mem_answer.status();

    auto load_bound = loaded->Bind(*rq, nullptr);
    ASSERT_TRUE(load_bound.ok()) << workload[i] << "\n" << load_bound.status();
    auto load_answer = loaded->Answer(*load_bound);
    ASSERT_TRUE(load_answer.ok()) << load_answer.status();

    // Bit-identical across the save/load boundary, and equal to what the
    // engine answers in-process from the same synopses.
    EXPECT_EQ(*mem_answer, *load_answer) << workload[i];
    EXPECT_EQ(*engine_answer, *load_answer) << workload[i];
    ++answered;
  }
  EXPECT_GT(answered, 0u);
}

TEST(StoreRoundTripTest, TpchWorkloadSurvivesSaveLoadBitIdentically) {
  TpchConfig config;
  config.scale = 1;
  config.customers = 120;
  config.parts = 80;
  auto db = GenerateTpch(config);

  ViewRewriteEngine engine(*db, PrivacyPolicy{"orders"}, EngineOptions{});
  auto workload = SmallWorkload(1, 30);
  auto nested = SmallWorkload(16, 10);
  workload.insert(workload.end(), nested.begin(), nested.end());
  ASSERT_TRUE(engine.Prepare(workload).ok());

  ExpectBitIdenticalRoundTrip(engine, db->schema(), workload,
                              ::testing::TempDir() + "tpch_bundle.vrsy");
}

TEST(StoreRoundTripTest, CensusWorkloadSurvivesSaveLoadBitIdentically) {
  CensusConfig config;
  config.households = 250;
  auto db = GenerateCensus(config);

  ViewRewriteEngine engine(*db, PrivacyPolicy{"household"}, EngineOptions{});
  auto workload = SmallWorkload(31, 30, 77);
  ASSERT_TRUE(engine.Prepare(workload).ok());

  ExpectBitIdenticalRoundTrip(engine, db->schema(), workload,
                              ::testing::TempDir() + "census_bundle.vrsy");
}

TEST(StoreRoundTripTest, LoadUnderDriftedSchemaIsRejected) {
  TpchConfig config;
  config.scale = 1;
  config.customers = 60;
  config.parts = 40;
  auto db = GenerateTpch(config);

  ViewRewriteEngine engine(*db, PrivacyPolicy{"orders"}, EngineOptions{});
  ASSERT_TRUE(engine.Prepare(SmallWorkload(1, 8)).ok());

  const std::string path = ::testing::TempDir() + "drift_bundle.vrsy";
  auto store = SynopsisStore::FromManager(engine.views(), db->schema());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE(store->Save(path).ok());

  // The Census schema fingerprints differently from TPC-H: the bundle
  // must refuse to serve under it instead of mis-answering.
  auto drifted = SynopsisStore::Load(path, MakeCensusSchema());
  ASSERT_FALSE(drifted.ok());
  EXPECT_EQ(drifted.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(drifted.status().message().find("schema drift"),
            std::string::npos);
}

TEST(StoreRoundTripTest, FromManagerWithoutPublishFails) {
  TpchConfig config;
  config.customers = 20;
  config.parts = 20;
  auto db = GenerateTpch(config);
  ViewManager manager(db->schema(), PrivacyPolicy{"orders"});
  auto store = SynopsisStore::FromManager(manager, db->schema());
  EXPECT_FALSE(store.ok());
  EXPECT_EQ(store.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace viewrewrite
