#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "common/fault_injection.h"
#include "serve/serve_test_util.h"
#include "serve/synopsis_store.h"

namespace viewrewrite {
namespace {

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Atomic durable save: write + fsync temp, rename, fsync directory. The
/// serve.save fault point sits between the durable temp write and the
/// rename — firing it is the "process killed at the worst moment"
/// simulation.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ctx_ = serve_testing::MakeServeContext(42, "durability");
    ASSERT_NE(ctx_.store, nullptr);
  }
  void TearDown() override { FaultInjection::Instance().DisableAll(); }

  serve_testing::ServeContext ctx_;
};

TEST_F(DurabilityTest, KillAfterTempWriteLeavesOldBundleIntact) {
  const std::string path = ::testing::TempDir() + "durable_overwrite.vrsy";
  Result<SynopsisStore> snapshot =
      SynopsisStore::FromManager(ctx_.engine->views(), ctx_.db->schema());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_TRUE(snapshot->Save(path).ok());

  // Simulated kill between the durable temp write and the rename.
  {
    ScopedFault fault = ScopedFault::OnNth(faults::kServeSave, 1);
    Status killed = snapshot->Save(path);
    ASSERT_FALSE(killed.ok());
  }

  // The published bundle is untouched and still loads cleanly...
  Result<SynopsisStore> survivor =
      SynopsisStore::Load(path, ctx_.db->schema());
  ASSERT_TRUE(survivor.ok()) << survivor.status();
  EXPECT_EQ(survivor->NumViews(), ctx_.store->NumViews());

  // ...and the temp file the "crash" left behind is itself a complete,
  // loadable bundle (the write + fsync finished before the kill) — crash
  // recovery can adopt it instead of re-publishing.
  const std::string tmp = path + ".tmp";
  ASSERT_TRUE(FileExists(tmp));
  Result<SynopsisStore> adopted =
      SynopsisStore::Load(tmp, ctx_.db->schema());
  EXPECT_TRUE(adopted.ok()) << adopted.status();

  // A later clean save replaces the bundle normally.
  ASSERT_TRUE(snapshot->Save(path).ok());
  EXPECT_TRUE(SynopsisStore::Load(path, ctx_.db->schema()).ok());
  std::remove(tmp.c_str());
  std::remove(path.c_str());
}

TEST_F(DurabilityTest, KillOnFreshSaveNeverExposesAPartialTarget) {
  const std::string path = ::testing::TempDir() + "durable_fresh.vrsy";
  std::remove(path.c_str());
  Result<SynopsisStore> snapshot =
      SynopsisStore::FromManager(ctx_.engine->views(), ctx_.db->schema());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();

  {
    ScopedFault fault = ScopedFault::OnNth(faults::kServeSave, 1);
    ASSERT_FALSE(snapshot->Save(path).ok());
  }
  // The target never appeared: readers polling for the bundle can never
  // observe a torn file, only absence.
  EXPECT_FALSE(FileExists(path));

  ASSERT_TRUE(snapshot->Save(path).ok());
  EXPECT_TRUE(SynopsisStore::Load(path, ctx_.db->schema()).ok());
  std::remove((path + ".tmp").c_str());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace viewrewrite
