#include <gtest/gtest.h>

#include <dirent.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/fault_injection.h"
#include "serve/republisher.h"
#include "serve/serve_test_util.h"
#include "serve/synopsis_store.h"

namespace viewrewrite {
namespace {

bool FileExists(const std::string& path) {
  return std::ifstream(path).good();
}

/// Full paths of `dir` entries whose name starts with `prefix`. Save uses
/// unique temp names (`<bundle>.tmp.<pid>.<seq>`), so tests locate crash
/// leftovers by prefix instead of a fixed name.
std::vector<std::string> TempSiblings(const std::string& dir,
                                      const std::string& prefix) {
  std::vector<std::string> out;
  DIR* d = opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (name.rfind(prefix, 0) == 0) out.push_back(dir + name);
  }
  closedir(d);
  return out;
}

/// Atomic durable save: write + fsync temp, rename, fsync directory. The
/// serve.save fault point sits between the durable temp write and the
/// rename — firing it is the "process killed at the worst moment"
/// simulation.
class DurabilityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // The lifetime reserve (10 beyond the initial 8) funds the
    // crash-mid-republish generations.
    ctx_ = serve_testing::MakeServeContext(42, "durability",
                                           /*lifetime_epsilon=*/18.0);
    ASSERT_NE(ctx_.store, nullptr);
  }
  void TearDown() override { FaultInjection::Instance().DisableAll(); }

  serve_testing::ServeContext ctx_;
};

TEST_F(DurabilityTest, KillAfterTempWriteLeavesOldBundleIntact) {
  const std::string path = ::testing::TempDir() + "durable_overwrite.vrsy";
  Result<SynopsisStore> snapshot =
      SynopsisStore::FromManager(ctx_.engine->views(), ctx_.db->schema());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_TRUE(snapshot->Save(path).ok());

  // Simulated kill between the durable temp write and the rename.
  {
    ScopedFault fault = ScopedFault::OnNth(faults::kServeSave, 1);
    Status killed = snapshot->Save(path);
    ASSERT_FALSE(killed.ok());
  }

  // The published bundle is untouched and still loads cleanly...
  Result<SynopsisStore> survivor =
      SynopsisStore::Load(path, ctx_.db->schema());
  ASSERT_TRUE(survivor.ok()) << survivor.status();
  EXPECT_EQ(survivor->NumViews(), ctx_.store->NumViews());

  // ...and the temp file the "crash" left behind is itself a complete,
  // loadable bundle (the write + fsync finished before the kill) — crash
  // recovery can adopt it instead of re-publishing.
  std::vector<std::string> orphans =
      TempSiblings(::testing::TempDir(), "durable_overwrite.vrsy.tmp");
  ASSERT_EQ(orphans.size(), 1u);
  Result<SynopsisStore> adopted =
      SynopsisStore::Load(orphans.front(), ctx_.db->schema());
  EXPECT_TRUE(adopted.ok()) << adopted.status();

  // A later clean save replaces the bundle normally AND sweeps the
  // orphaned temp: crash litter never accumulates across republishes.
  ASSERT_TRUE(snapshot->Save(path).ok());
  EXPECT_TRUE(SynopsisStore::Load(path, ctx_.db->schema()).ok());
  EXPECT_TRUE(
      TempSiblings(::testing::TempDir(), "durable_overwrite.vrsy.tmp")
          .empty());
  std::remove(path.c_str());
}

TEST_F(DurabilityTest, KillOnFreshSaveNeverExposesAPartialTarget) {
  const std::string path = ::testing::TempDir() + "durable_fresh.vrsy";
  std::remove(path.c_str());
  Result<SynopsisStore> snapshot =
      SynopsisStore::FromManager(ctx_.engine->views(), ctx_.db->schema());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();

  {
    ScopedFault fault = ScopedFault::OnNth(faults::kServeSave, 1);
    ASSERT_FALSE(snapshot->Save(path).ok());
  }
  // The target never appeared: readers polling for the bundle can never
  // observe a torn file, only absence.
  EXPECT_FALSE(FileExists(path));

  ASSERT_TRUE(snapshot->Save(path).ok());
  EXPECT_TRUE(SynopsisStore::Load(path, ctx_.db->schema()).ok());
  EXPECT_TRUE(
      TempSiblings(::testing::TempDir(), "durable_fresh.vrsy.tmp").empty());
  std::remove(path.c_str());
}

TEST_F(DurabilityTest, CrashMidRepublishLeavesOldGenerationServableAndSweeps) {
  // Crash-mid-republish durability: a republish generation whose save is
  // killed between the temp fsync and the rename must (a) leave the
  // previously published generation loadable and byte-consistent, (b)
  // refund the generation's budget (it never became observable), and (c)
  // have its orphaned unique-named temp swept by the next generation's
  // successful save.
  const std::string path = ::testing::TempDir() + "durable_republish.vrsy";
  std::remove(path.c_str());
  Result<SynopsisStore> snapshot =
      SynopsisStore::FromManager(ctx_.engine->views(), ctx_.db->schema());
  ASSERT_TRUE(snapshot.ok()) << snapshot.status();
  ASSERT_TRUE(snapshot->Save(path).ok());

  QueryServer server(
      std::make_shared<const SynopsisStore>(std::move(*snapshot)),
      ctx_.db->schema(), ServeOptions{});
  RepublisherOptions options;
  options.bundle_path = path;
  options.generation_epsilon = 0.25;
  options.max_attempts = 1;  // one attempt == one simulated crash
  Republisher republisher(ctx_.engine.get(), ctx_.db->schema(), &server,
                          options);

  const double spent_before = ctx_.engine->stats().budget_spent_epsilon;
  {
    ScopedFault fault = ScopedFault::OnNth(faults::kServeSave, 1);
    Result<RepublishReport> report = republisher.RepublishNow({"orders"});
    ASSERT_FALSE(report.ok());
  }
  // (b) The generation never published, so the cross-epoch ledger shows
  // no net spend from it.
  EXPECT_NEAR(ctx_.engine->stats().budget_spent_epsilon, spent_before, 1e-9);
  // (a) The old generation still serves: the bundle on disk is the
  // pre-crash one and loads cleanly.
  Result<SynopsisStore> survivor =
      SynopsisStore::Load(path, ctx_.db->schema());
  ASSERT_TRUE(survivor.ok()) << survivor.status();
  EXPECT_EQ(survivor->generation(), 0u);
  ASSERT_EQ(
      TempSiblings(::testing::TempDir(), "durable_republish.vrsy.tmp").size(),
      1u);

  // (c) The next generation publishes cleanly and sweeps the orphan.
  Result<RepublishReport> next = republisher.RepublishNow({"orders"});
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_GT(next->generation, 0u);
  EXPECT_TRUE(
      TempSiblings(::testing::TempDir(), "durable_republish.vrsy.tmp")
          .empty());
  Result<SynopsisStore> republished =
      SynopsisStore::Load(path, ctx_.db->schema());
  ASSERT_TRUE(republished.ok()) << republished.status();
  EXPECT_EQ(republished->generation(), next->generation);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace viewrewrite
