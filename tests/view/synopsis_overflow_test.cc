// Regression for the synopsis cell-count overflow: two dimensions whose
// cell counts multiply past 2^64 used to wrap the running product, slip
// under max_cells, and head for a bogus (and enormous) allocation. The
// checked multiply must refuse with a typed Status before any allocation.

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "common/random.h"
#include "sql/parser.h"
#include "storage/table.h"
#include "view/synopsis.h"
#include "view/view_def.h"

namespace viewrewrite {
namespace {

/// One-table schema whose two columns carry astronomically large bucketed
/// domains (IntBuckets stores lo/hi/buckets scalars, so huge bucket
/// counts are cheap to *declare* — the danger is downstream).
Schema MakeHugeDomainSchema(int64_t buckets) {
  Schema schema;
  std::vector<ColumnDef> cols;
  cols.push_back({"x", DataType::kInt,
                  ColumnDomain::IntBuckets(0, (int64_t{1} << 62), buckets)});
  cols.push_back({"y", DataType::kInt,
                  ColumnDomain::IntBuckets(0, (int64_t{1} << 62), buckets)});
  (void)schema.AddTable(TableSchema("t", std::move(cols), "x"));
  return schema;
}

std::unique_ptr<ViewDef> MakeTwoHugeDimensionView(const Schema& schema,
                                                  int64_t buckets) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM t");
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  auto view = std::make_unique<ViewDef>("t", std::move(*stmt));
  const TableSchema* t = schema.FindTable("t");
  EXPECT_NE(t, nullptr);
  view->AddAttribute({"t", "x", ColumnDomain::IntBuckets(
                                    0, (int64_t{1} << 62), buckets)});
  view->AddAttribute({"t", "y", ColumnDomain::IntBuckets(
                                    0, (int64_t{1} << 62), buckets)});
  ViewMeasure count;
  count.kind = ViewMeasure::Kind::kCount;
  count.key = "count";
  view->AddMeasure(std::move(count));
  return view;
}

TEST(SynopsisOverflowTest, CellProductPastUint64RefusedNotWrapped) {
  // (2^62 + 1)^2 overflows uint64: a wrapping product would come out tiny
  // and pass a naive max_cells check.
  const int64_t buckets = int64_t{1} << 62;
  Schema schema = MakeHugeDomainSchema(buckets);
  Database db(schema);
  auto view = MakeTwoHugeDimensionView(schema, buckets);

  SynopsisOptions options;
  options.max_cells = std::numeric_limits<size_t>::max();  // only the
  // overflow check stands between us and a wrapped product
  Random rng(7);
  auto synopsis = Synopsis::Build(*view, db, PrivacyPolicy{"t"},
                                  /*epsilon=*/1.0, options, &rng);
  ASSERT_FALSE(synopsis.ok());
  EXPECT_EQ(synopsis.status().code(), StatusCode::kInvalidArgument)
      << synopsis.status();
}

TEST(SynopsisOverflowTest, CellProductOverBudgetRefused) {
  // No overflow, just far over the default budget: same typed refusal.
  const int64_t buckets = int64_t{1} << 30;
  Schema schema = MakeHugeDomainSchema(buckets);
  Database db(schema);
  auto view = MakeTwoHugeDimensionView(schema, buckets);

  SynopsisOptions options;  // default max_cells = 2^21
  Random rng(7);
  auto synopsis = Synopsis::Build(*view, db, PrivacyPolicy{"t"},
                                  /*epsilon=*/1.0, options, &rng);
  ASSERT_FALSE(synopsis.ok());
  EXPECT_EQ(synopsis.status().code(), StatusCode::kInvalidArgument)
      << synopsis.status();
}

TEST(SynopsisOverflowTest, ReasonableGridStillBuilds) {
  // Guard the guard: a small grid on the same schema shape must build.
  const int64_t buckets = 8;
  Schema schema = MakeHugeDomainSchema(buckets);
  Database db(schema);
  auto view = MakeTwoHugeDimensionView(schema, buckets);

  SynopsisOptions options;
  Random rng(7);
  auto synopsis = Synopsis::Build(*view, db, PrivacyPolicy{"t"},
                                  /*epsilon=*/1.0, options, &rng);
  EXPECT_TRUE(synopsis.ok()) << synopsis.status();
}

}  // namespace
}  // namespace viewrewrite
