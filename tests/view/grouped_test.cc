#include <gtest/gtest.h>

#include <map>

#include "exec/executor.h"
#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "view/view_manager.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

constexpr double kHugeEpsilon = 1e9;

/// Grouped answering: per-group noisy aggregates released straight from
/// the synopsis cells.
class GroupedTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing_support::MakeTestDatabase(6, 40);
    rewriter_ = std::make_unique<Rewriter>(db_->schema());
    manager_ = std::make_unique<ViewManager>(db_->schema(),
                                             PrivacyPolicy{"customer"});
  }

  BoundQuery MustRegisterGrouped(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto rq = rewriter_->Rewrite(**stmt);
    EXPECT_TRUE(rq.ok()) << rq.status();
    EXPECT_EQ(rq->combination.terms.size(), 1u);
    auto bound = manager_->RegisterGrouped(
        *rq->combination.terms[0].query, nullptr);
    EXPECT_TRUE(bound.ok()) << bound.status();
    return bound.ok() ? std::move(bound).value() : BoundQuery{};
  }

  void Publish(uint64_t seed = 11, double eps = kHugeEpsilon) {
    Random rng(seed);
    Status st = manager_->Publish(*db_, eps, &rng);
    ASSERT_TRUE(st.ok()) << st;
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Rewriter> rewriter_;
  std::unique_ptr<ViewManager> manager_;
};

TEST_F(GroupedTest, CountByCategoricalMatchesExecutor) {
  BoundQuery bound = MustRegisterGrouped(
      "SELECT o_status, COUNT(*) FROM orders o GROUP BY o_status");
  Publish();
  auto rs = manager_->AnswerGrouped(bound, {});
  ASSERT_TRUE(rs.ok()) << rs.status();
  // One row per category in the registered domain ('f','o','p').
  ASSERT_EQ(rs->NumRows(), 3u);

  Executor executor(*db_);
  auto truth_stmt = ParseSelect(
      "SELECT o_status, COUNT(*) FROM orders GROUP BY o_status");
  ASSERT_TRUE(truth_stmt.ok());
  auto truth = executor.Execute(**truth_stmt);
  ASSERT_TRUE(truth.ok());
  std::map<std::string, double> expected;
  for (const Row& r : truth->rows) {
    expected[r[0].AsString()] = r[1].ToDouble();
  }
  for (const Row& r : rs->rows) {
    double want = expected.count(r[0].AsString())
                      ? expected[r[0].AsString()]
                      : 0.0;
    EXPECT_NEAR(r[1].ToDouble(), want, 1e-3) << r[0].ToString();
  }
}

TEST_F(GroupedTest, FilteredGroupedCount) {
  BoundQuery bound = MustRegisterGrouped(
      "SELECT o_status, COUNT(*) FROM orders o WHERE o.o_totalprice >= 128 "
      "GROUP BY o_status");
  Publish();
  auto rs = manager_->AnswerGrouped(bound, {});
  ASSERT_TRUE(rs.ok()) << rs.status();
  Executor executor(*db_);
  double total = 0;
  for (const Row& r : rs->rows) total += r[1].ToDouble();
  auto truth_stmt = ParseSelect(
      "SELECT COUNT(*) FROM orders WHERE o_totalprice >= 128");
  auto truth = executor.ExecuteScalar(**truth_stmt);
  ASSERT_TRUE(truth.ok());
  EXPECT_NEAR(total, *truth, 1e-3);
}

TEST_F(GroupedTest, GroupedSumMeasure) {
  BoundQuery bound = MustRegisterGrouped(
      "SELECT o_status, SUM(o_totalprice) FROM orders o GROUP BY "
      "o_status");
  Publish();
  auto rs = manager_->AnswerGrouped(bound, {});
  ASSERT_TRUE(rs.ok()) << rs.status();
  Executor executor(*db_);
  auto truth_stmt = ParseSelect(
      "SELECT SUM(o_totalprice) FROM orders");
  auto truth = executor.ExecuteScalar(**truth_stmt);
  ASSERT_TRUE(truth.ok());
  double total = 0;
  for (const Row& r : rs->rows) total += r[1].ToDouble();
  EXPECT_NEAR(total, *truth, 1e-2);
}

TEST_F(GroupedTest, BucketGroupKeysUseRepresentatives) {
  BoundQuery bound = MustRegisterGrouped(
      "SELECT c_acctbal, COUNT(*) FROM customer c GROUP BY c_acctbal");
  Publish();
  auto rs = manager_->AnswerGrouped(bound, {});
  ASSERT_TRUE(rs.ok()) << rs.status();
  // 16 buckets over [0,63].
  EXPECT_EQ(rs->NumRows(), 16u);
  double total = 0;
  for (const Row& r : rs->rows) total += r[1].ToDouble();
  EXPECT_NEAR(total, 40.0, 1e-3);  // all customers counted once
}

TEST_F(GroupedTest, NoisyGroupsStillSumToNoisyTotal) {
  BoundQuery bound = MustRegisterGrouped(
      "SELECT o_status, COUNT(*) FROM orders o GROUP BY o_status");
  Publish(/*seed=*/3, /*eps=*/1.0);
  auto noisy = manager_->AnswerGrouped(bound, {});
  auto exact = manager_->AnswerGrouped(bound, {}, /*exact=*/true);
  ASSERT_TRUE(noisy.ok() && exact.ok());
  ASSERT_EQ(noisy->NumRows(), exact->NumRows());
  bool any_noise = false;
  for (size_t i = 0; i < noisy->NumRows(); ++i) {
    if (std::fabs(noisy->rows[i][1].ToDouble() -
                  exact->rows[i][1].ToDouble()) > 1e-9) {
      any_noise = true;
    }
  }
  EXPECT_TRUE(any_noise);
}

TEST_F(GroupedTest, RejectsUnregisteredGroupColumn) {
  // o_orderkey has no bounded domain: registration must fail cleanly.
  auto stmt = ParseSelect(
      "SELECT o_orderkey, COUNT(*) FROM orders o GROUP BY o_orderkey");
  ASSERT_TRUE(stmt.ok());
  auto rq = rewriter_->Rewrite(**stmt);
  ASSERT_TRUE(rq.ok());
  auto bound = manager_->RegisterGrouped(
      *rq->combination.terms[0].query, nullptr);
  EXPECT_FALSE(bound.ok());
}

TEST_F(GroupedTest, HavingRegistersAndFiltersPostNoise) {
  // HAVING is supported as pure post-processing: registration succeeds
  // (HAVING aggregates register companion measures like select-list
  // ones) and answering drops exactly the groups whose noisy aggregate
  // fails the predicate.
  BoundQuery all = MustRegisterGrouped(
      "SELECT o_status, COUNT(*) FROM orders o GROUP BY o_status");
  auto stmt = ParseSelect(
      "SELECT o_status, COUNT(*) FROM orders o GROUP BY o_status HAVING "
      "COUNT(*) > 2");
  ASSERT_TRUE(stmt.ok());
  auto filtered = manager_->RegisterGrouped(**stmt, nullptr);
  ASSERT_TRUE(filtered.ok()) << filtered.status();
  Publish();
  auto rs_all = manager_->AnswerGrouped(all, {});
  auto rs_filtered = manager_->AnswerGrouped(*filtered, {});
  ASSERT_TRUE(rs_all.ok()) << rs_all.status();
  ASSERT_TRUE(rs_filtered.ok()) << rs_filtered.status();
  EXPECT_LE(rs_filtered->NumRows(), rs_all->NumRows());
  // Both queries read the same published cells, so every surviving row
  // satisfies the predicate and matches the unfiltered answer exactly.
  for (const auto& row : rs_filtered->rows) {
    EXPECT_GT(row[1].ToDouble(), 2.0);
    bool found = false;
    for (const auto& other : rs_all->rows) {
      if (other[0].AsString() == row[0].AsString() &&
          other[1].ToDouble() == row[1].ToDouble()) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found);
  }
}

TEST_F(GroupedTest, ScalarRegistrationStillRejectsGroupBy) {
  auto stmt = ParseSelect(
      "SELECT o_status, COUNT(*) FROM orders o GROUP BY o_status");
  ASSERT_TRUE(stmt.ok());
  auto bound = manager_->RegisterScalar(**stmt, nullptr);
  EXPECT_FALSE(bound.ok());
}

}  // namespace
}  // namespace viewrewrite
