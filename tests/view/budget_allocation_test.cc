#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "view/view_manager.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

class BudgetAllocationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing_support::MakeTestDatabase(8, 40);
    rewriter_ = std::make_unique<Rewriter>(db_->schema());
    manager_ = std::make_unique<ViewManager>(db_->schema(),
                                             PrivacyPolicy{"customer"});
  }

  void Register(const std::string& sql, int times = 1) {
    for (int i = 0; i < times; ++i) {
      auto stmt = ParseSelect(sql);
      ASSERT_TRUE(stmt.ok());
      auto rq = rewriter_->Rewrite(**stmt);
      ASSERT_TRUE(rq.ok()) << rq.status();
      auto bound = manager_->RegisterRewritten(*rq, nullptr);
      ASSERT_TRUE(bound.ok()) << bound.status();
      last_bound_ = std::move(bound).value();
    }
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Rewriter> rewriter_;
  std::unique_ptr<ViewManager> manager_;
  BoundRewrittenQuery last_bound_;
};

TEST_F(BudgetAllocationTest, UsageCountsTrackRegistrations) {
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64", 5);
  Register(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND c.c_nation = 1",
      2);
  ASSERT_EQ(manager_->NumViews(), 2u);
  size_t total_usage = 0;
  for (const auto& view : manager_->views()) {
    total_usage += manager_->ViewUsage(view->signature());
  }
  EXPECT_EQ(total_usage, 7u);
  EXPECT_EQ(manager_->ViewUsage("no-such-view"), 0u);
}

TEST_F(BudgetAllocationTest, UniformSplitsEvenly) {
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64", 9);
  Register(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND c.c_nation = 1",
      1);
  Random rng(1);
  ASSERT_TRUE(manager_->Publish(*db_, 8.0, &rng,
                                BudgetAllocation::kUniform).ok());
  ASSERT_EQ(manager_->accountant()->ledger().size(), 2u);
  EXPECT_DOUBLE_EQ(manager_->accountant()->ledger()[0].epsilon, 4.0);
  EXPECT_DOUBLE_EQ(manager_->accountant()->ledger()[1].epsilon, 4.0);
}

TEST_F(BudgetAllocationTest, ByUsageWeightsPopularViews) {
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64", 9);
  Register(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND c.c_nation = 1",
      1);
  Random rng(1);
  ASSERT_TRUE(manager_->Publish(*db_, 10.0, &rng,
                                BudgetAllocation::kByUsage).ok());
  const auto& ledger = manager_->accountant()->ledger();
  ASSERT_EQ(ledger.size(), 2u);
  // 9:1 usage -> 9.0 and 1.0 of the 10.0 budget (ledger order follows
  // registration order).
  double hi = std::max(ledger[0].epsilon, ledger[1].epsilon);
  double lo = std::min(ledger[0].epsilon, ledger[1].epsilon);
  EXPECT_DOUBLE_EQ(hi, 9.0);
  EXPECT_DOUBLE_EQ(lo, 1.0);
  // Total spend is still exactly the budget (sequential composition).
  EXPECT_NEAR(manager_->accountant()->spent(), 10.0, 1e-9);
}

TEST_F(BudgetAllocationTest, ByUsageImprovesPopularViewAccuracy) {
  // With a 9:1 usage skew, the popular view's answers should be more
  // accurate under kByUsage than under kUniform (on average over seeds).
  const char* popular =
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64";
  double uniform_err = 0;
  double usage_err = 0;
  for (uint64_t seed = 0; seed < 12; ++seed) {
    for (bool by_usage : {false, true}) {
      SetUp();
      Register(popular, 9);
      Register(
          "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
          "o.o_custkey AND c.c_nation = 1",
          1);
      Register(popular);  // the bound query we measure
      Random rng(seed);
      ASSERT_TRUE(manager_
                      ->Publish(*db_, 2.0, &rng,
                                by_usage ? BudgetAllocation::kByUsage
                                         : BudgetAllocation::kUniform)
                      .ok());
      auto noisy = manager_->Answer(last_bound_);
      auto exact = manager_->Answer(last_bound_, /*exact=*/true);
      ASSERT_TRUE(noisy.ok() && exact.ok());
      double err = std::fabs(*noisy - *exact);
      (by_usage ? usage_err : uniform_err) += err;
    }
  }
  EXPECT_LT(usage_err, uniform_err);
}

TEST_F(BudgetAllocationTest, HierarchicalStrategyAnswersRangeQueries) {
  SynopsisOptions options;
  options.strategy = MatrixStrategy::kHierarchical;
  manager_ = std::make_unique<ViewManager>(db_->schema(),
                                           PrivacyPolicy{"customer"},
                                           options);
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64 AND "
           "o.o_totalprice < 192");
  Random rng(3);
  ASSERT_TRUE(manager_->Publish(*db_, 1e9, &rng).ok());
  auto noisy = manager_->Answer(last_bound_);
  auto exact = manager_->Answer(last_bound_, /*exact=*/true);
  ASSERT_TRUE(noisy.ok()) << noisy.status();
  ASSERT_TRUE(exact.ok());
  // Huge budget: the hierarchical range answer must match the truth.
  EXPECT_NEAR(*noisy, *exact, 1e-3);
}

TEST_F(BudgetAllocationTest, HierarchicalFallsBackOnNonRangePredicates) {
  SynopsisOptions options;
  options.strategy = MatrixStrategy::kHierarchical;
  manager_ = std::make_unique<ViewManager>(db_->schema(),
                                           PrivacyPolicy{"customer"},
                                           options);
  // Disjoint ranges -> non-contiguous mask -> identity fallback.
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice < 32 OR "
           "o.o_totalprice >= 224");
  Random rng(4);
  ASSERT_TRUE(manager_->Publish(*db_, 1e9, &rng).ok());
  auto noisy = manager_->Answer(last_bound_);
  auto exact = manager_->Answer(last_bound_, /*exact=*/true);
  ASSERT_TRUE(noisy.ok()) << noisy.status();
  EXPECT_NEAR(*noisy, *exact, 1e-3);
}

}  // namespace
}  // namespace viewrewrite
