#include <gtest/gtest.h>

#include "sql/parser.h"
#include "view/view_def.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

class DomainTest : public ::testing::Test {
 protected:
  ColumnDomain Derive(const std::string& sql, const std::string& table,
                      const std::string& column) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    auto d = DeriveAttributeDomain((*stmt)->from, schema_, table, column,
                                   options_);
    EXPECT_TRUE(d.ok()) << d.status();
    return d.ok() ? std::move(d).value() : ColumnDomain::None();
  }

  Schema schema_ = testing_support::MakeTestSchema();
  DomainOptions options_;
};

TEST_F(DomainTest, BaseColumnUsesCatalogDomain) {
  ColumnDomain d = Derive("SELECT * FROM orders o", "o", "o_status");
  EXPECT_EQ(d.kind, ColumnDomain::Kind::kCategorical);
  EXPECT_EQ(d.CellCount(), 3);
}

TEST_F(DomainTest, UnqualifiedLookupSearchesAllLeaves) {
  ColumnDomain d = Derive("SELECT * FROM customer c, orders o", "",
                          "o_totalprice");
  EXPECT_EQ(d.kind, ColumnDomain::Kind::kIntBuckets);
}

TEST_F(DomainTest, UnregisteredColumnFails) {
  auto stmt = ParseSelect("SELECT * FROM orders o");
  ASSERT_TRUE(stmt.ok());
  auto d = DeriveAttributeDomain((*stmt)->from, schema_, "o", "o_orderkey",
                                 options_);
  EXPECT_FALSE(d.ok());
}

TEST_F(DomainTest, DerivedCountGetsSyntheticDomain) {
  ColumnDomain d = Derive(
      "SELECT * FROM (SELECT o_custkey, COUNT(*) AS cnt FROM orders GROUP "
      "BY o_custkey) dt",
      "dt", "cnt");
  EXPECT_EQ(d.kind, ColumnDomain::Kind::kIntBuckets);
  EXPECT_EQ(d.lo, 0);
  EXPECT_EQ(d.hi, options_.count_bound - 1);
}

TEST_F(DomainTest, DerivedAvgKeepsColumnDomain) {
  ColumnDomain d = Derive(
      "SELECT * FROM (SELECT o_custkey, AVG(o_totalprice) AS a FROM orders "
      "GROUP BY o_custkey) dt",
      "dt", "a");
  // AVG stays within the argument's registered domain.
  EXPECT_EQ(d.kind, ColumnDomain::Kind::kIntBuckets);
  EXPECT_EQ(d.lo, 0);
  EXPECT_EQ(d.hi, 255);
}

TEST_F(DomainTest, DerivedSumScalesByCountBound) {
  ColumnDomain d = Derive(
      "SELECT * FROM (SELECT o_custkey, SUM(o_totalprice) AS s FROM orders "
      "GROUP BY o_custkey) dt",
      "dt", "s");
  EXPECT_EQ(d.kind, ColumnDomain::Kind::kIntBuckets);
  EXPECT_EQ(d.lo, 0);
  // (255 + 1) * count_bound - 1.
  EXPECT_EQ(d.hi, 256 * options_.count_bound - 1);
}

TEST_F(DomainTest, DerivedColumnPassThrough) {
  ColumnDomain d = Derive(
      "SELECT * FROM (SELECT o_custkey, o_status FROM orders) dt", "dt",
      "o_status");
  EXPECT_EQ(d.kind, ColumnDomain::Kind::kCategorical);
}

TEST_F(DomainTest, LiteralProjectionGetsSingletonDomain) {
  ColumnDomain d = Derive(
      "SELECT * FROM (SELECT o_custkey, 1 AS matched FROM orders) dt", "dt",
      "matched");
  EXPECT_EQ(d.kind, ColumnDomain::Kind::kCategorical);
  EXPECT_EQ(d.CellCount(), 1);
  EXPECT_EQ(d.CellIndex(Value::Int(1)), 0);
}

TEST_F(DomainTest, NestedDerivedResolution) {
  ColumnDomain d = Derive(
      "SELECT * FROM (SELECT inner_dt.a AS b FROM (SELECT AVG(o_totalprice)"
      " AS a FROM orders GROUP BY o_custkey) inner_dt) outer_dt",
      "outer_dt", "b");
  EXPECT_EQ(d.kind, ColumnDomain::Kind::kIntBuckets);
  EXPECT_EQ(d.hi, 255);
}

TEST_F(DomainTest, ExpressionBoundIntervalArithmetic) {
  auto stmt = ParseSelect("SELECT * FROM lineitem l");
  ASSERT_TRUE(stmt.ok());
  // l_quantity in [0,64), l_price in [0,256): product bound = 16384.
  auto q = ParseSelect("SELECT l_quantity * l_price FROM lineitem l");
  ASSERT_TRUE(q.ok());
  auto bound = ExpressionBound((*stmt)->from, schema_,
                               *(*q)->items[0].expr, options_);
  ASSERT_TRUE(bound.ok()) << bound.status();
  EXPECT_DOUBLE_EQ(*bound, 64.0 * 256.0);
}

TEST_F(DomainTest, ExpressionBoundHandlesSubtraction) {
  auto stmt = ParseSelect("SELECT * FROM customer c");
  ASSERT_TRUE(stmt.ok());
  auto q = ParseSelect("SELECT 10 - c_acctbal FROM customer c");
  ASSERT_TRUE(q.ok());
  auto bound = ExpressionBound((*stmt)->from, schema_,
                               *(*q)->items[0].expr, options_);
  ASSERT_TRUE(bound.ok());
  // c_acctbal in [0, 64): 10 - x in (-54, 10] -> bound 54.
  EXPECT_DOUBLE_EQ(*bound, 54.0);
}

}  // namespace
}  // namespace viewrewrite
