#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "view/view_manager.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

/// FK-constraint DP semantics: views over relations that neither are nor
/// reference the primary privacy relation are identical on every pair of
/// neighboring databases and may be published exactly.
class InsensitiveViewTest : public ::testing::Test {
 protected:
  void SetUp() override { db_ = testing_support::MakeTestDatabase(5, 35); }

  /// Publishes `sql` under `policy` with a tiny budget and returns
  /// |noisy - exact| — zero iff the view was published without noise.
  double NoiseMagnitude(const std::string& sql, const std::string& policy,
                        uint64_t seed) {
    Rewriter rewriter(db_->schema());
    ViewManager manager(db_->schema(), PrivacyPolicy{policy});
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok());
    auto rq = rewriter.Rewrite(**stmt);
    EXPECT_TRUE(rq.ok()) << rq.status();
    auto bound = manager.RegisterRewritten(*rq, nullptr);
    EXPECT_TRUE(bound.ok()) << bound.status();
    Random rng(seed);
    Status st = manager.Publish(*db_, /*eps=*/0.01, &rng);
    EXPECT_TRUE(st.ok()) << st;
    auto noisy = manager.Answer(*bound);
    auto exact = manager.Answer(*bound, /*exact=*/true);
    EXPECT_TRUE(noisy.ok() && exact.ok());
    return std::fabs(*noisy - *exact);
  }

  std::unique_ptr<Database> db_;
};

TEST_F(InsensitiveViewTest, UpstreamRelationIsExactUnderDownstreamPolicy) {
  // customer does not reference orders, so under the orders policy a
  // customer-only query is invariant across neighbors.
  EXPECT_EQ(NoiseMagnitude("SELECT COUNT(*) FROM customer c WHERE "
                           "c.c_acctbal >= 16",
                           "orders", 1),
            0.0);
  // Under the customer policy the same query must be noisy.
  EXPECT_GT(NoiseMagnitude("SELECT COUNT(*) FROM customer c WHERE "
                           "c.c_acctbal >= 16",
                           "customer", 1),
            0.0);
}

TEST_F(InsensitiveViewTest, OrdersExactUnderLineitemPolicy) {
  EXPECT_EQ(NoiseMagnitude("SELECT COUNT(*) FROM customer c, orders o "
                           "WHERE c.c_custkey = o.o_custkey AND c.c_nation "
                           "= 1",
                           "lineitem", 2),
            0.0);
  EXPECT_GT(NoiseMagnitude("SELECT COUNT(*) FROM customer c, orders o "
                           "WHERE c.c_custkey = o.o_custkey AND c.c_nation "
                           "= 1",
                           "orders", 2),
            0.0);
}

TEST_F(InsensitiveViewTest, DownstreamRelationInheritsProtection) {
  // lineitem references orders (transitively customer): noisy under every
  // upstream policy.
  for (const char* policy : {"customer", "orders", "lineitem"}) {
    EXPECT_GT(NoiseMagnitude("SELECT COUNT(*) FROM lineitem l WHERE "
                             "l.l_quantity >= 8",
                             policy, 3),
              0.0)
        << policy;
  }
}

TEST_F(InsensitiveViewTest, DerivedTableOverProtectedDataIsNoisy) {
  // The only path to lineitem runs through an aggregated derived table;
  // the surrogate-key lineage must still add noise under lineitem policy.
  EXPECT_GT(NoiseMagnitude(
                "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= ALL "
                "(SELECT l.l_price FROM lineitem l WHERE l.l_orderkey = "
                "o.o_orderkey)",
                "lineitem", 4),
            0.0);
}

TEST_F(InsensitiveViewTest, DerivedTableOverUnprotectedDataIsExact) {
  // The same shape, but the protected relation is customer-upstream: the
  // derived table aggregates orders only, orders references customer, so
  // under lineitem policy everything here is insensitive.
  EXPECT_EQ(NoiseMagnitude(
                "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * "
                "FROM orders o WHERE o.o_custkey = c.c_custkey)",
                "lineitem", 5),
            0.0);
}

}  // namespace
}  // namespace viewrewrite
