#include "view/view_manager.h"

#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

class ViewManagerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing_support::MakeTestDatabase(4, 30);
    schema_ = &db_->schema();
    rewriter_ = std::make_unique<Rewriter>(*schema_);
    manager_ = std::make_unique<ViewManager>(*schema_,
                                             PrivacyPolicy{"customer"});
  }

  void Register(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    ASSERT_TRUE(stmt.ok()) << stmt.status();
    auto rq = rewriter_->Rewrite(**stmt);
    ASSERT_TRUE(rq.ok()) << rq.status();
    auto bound = manager_->RegisterRewritten(*rq, nullptr);
    ASSERT_TRUE(bound.ok()) << bound.status();
  }

  std::unique_ptr<Database> db_;
  const Schema* schema_ = nullptr;
  std::unique_ptr<Rewriter> rewriter_;
  std::unique_ptr<ViewManager> manager_;
};

TEST_F(ViewManagerTest, SameStructureSharesOneView) {
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64");
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 128");
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_status = 'f'");
  EXPECT_EQ(manager_->NumViews(), 1u);
}

TEST_F(ViewManagerTest, AttributesAccumulateAcrossQueries) {
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64");
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_status = 'f'");
  ASSERT_EQ(manager_->NumViews(), 1u);
  EXPECT_EQ(manager_->views()[0]->attributes().size(), 2u);
}

TEST_F(ViewManagerTest, DifferentJoinsMakeDifferentViews) {
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64");
  Register(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND c.c_nation = 1");
  EXPECT_EQ(manager_->NumViews(), 2u);
}

TEST_F(ViewManagerTest, SubqueryConstantsDoNotAddViews) {
  // The paper's headline: nested-query filter constants must not
  // proliferate views.
  for (int k = 0; k < 5; ++k) {
    Register(
        "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM "
        "orders o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= " +
        std::to_string(4 * (k + 1)) + ")");
  }
  EXPECT_EQ(manager_->NumViews(), 1u);
}

TEST_F(ViewManagerTest, BakedPredicatesSplitViews) {
  // With a bake-everything policy (PrivateSQL-style), constants land in
  // the view definition and views multiply.
  ViewManager::BakePredicate bake_all = [](const Expr&) { return true; };
  for (int k = 0; k < 3; ++k) {
    auto stmt = ParseSelect(
        "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= " +
        std::to_string(64 * (k + 1)));
    ASSERT_TRUE(stmt.ok());
    auto rq = rewriter_->Rewrite(**stmt);
    ASSERT_TRUE(rq.ok());
    auto bound = manager_->RegisterRewritten(*rq, bake_all);
    ASSERT_TRUE(bound.ok());
  }
  EXPECT_EQ(manager_->NumViews(), 3u);
}

TEST_F(ViewManagerTest, MeasuresAccumulate) {
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64");
  Register("SELECT SUM(o_totalprice) FROM orders o WHERE o.o_status = 'f'");
  ASSERT_EQ(manager_->NumViews(), 1u);
  EXPECT_EQ(manager_->views()[0]->measures().size(), 1u);  // the SUM
  EXPECT_EQ(manager_->views()[0]->measures()[0].kind,
            ViewMeasure::Kind::kSum);
}

TEST_F(ViewManagerTest, GroupedWorkloadQueriesRegister) {
  auto stmt = ParseSelect(
      "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey");
  ASSERT_TRUE(stmt.ok());
  auto rq = rewriter_->Rewrite(**stmt);
  ASSERT_TRUE(rq.ok());
  auto bound = manager_->RegisterRewritten(*rq, nullptr);
  ASSERT_TRUE(bound.ok()) << bound.status().ToString();
  // The grouped term binds with its full statement (GROUP BY preserved)
  // and the group column became a dimension of the registered view.
  ASSERT_EQ(bound->terms.size(), 1u);
  ASSERT_NE(bound->terms[0].query.cell_query, nullptr);
  EXPECT_FALSE(bound->terms[0].query.cell_query->group_by.empty());
  ASSERT_EQ(manager_->NumViews(), 1u);
  EXPECT_GE(manager_->views()[0]->AttributeIndex("orders", "o_custkey"), 0);
}

TEST_F(ViewManagerTest, PublishWithoutViewsFails) {
  Random rng(1);
  EXPECT_FALSE(manager_->Publish(*db_, 1.0, &rng).ok());
}

TEST_F(ViewManagerTest, BudgetSplitsEvenlyAcrossViews) {
  Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64");
  Register(
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND c.c_nation = 1");
  Random rng(2);
  ASSERT_TRUE(manager_->Publish(*db_, 8.0, &rng).ok());
  ASSERT_NE(manager_->accountant(), nullptr);
  EXPECT_NEAR(manager_->accountant()->spent(), 8.0, 1e-9);
  ASSERT_EQ(manager_->accountant()->ledger().size(), 2u);
  EXPECT_DOUBLE_EQ(manager_->accountant()->ledger()[0].epsilon, 4.0);
}

TEST_F(ViewManagerTest, AnswerBeforePublishFails) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM orders o");
  ASSERT_TRUE(stmt.ok());
  auto rq = rewriter_->Rewrite(**stmt);
  ASSERT_TRUE(rq.ok());
  auto bound = manager_->RegisterRewritten(*rq, nullptr);
  ASSERT_TRUE(bound.ok());
  EXPECT_FALSE(manager_->Answer(*bound).ok());
}

TEST_F(ViewManagerTest, ViewCountIndependentOfWorkloadSize) {
  // Growing the workload with constant-varied instances of the same
  // templates keeps the view count flat (Fig. 6e, ViewRewrite side).
  std::vector<size_t> counts;
  for (int n : {4, 16, 64}) {
    SetUp();  // fresh manager
    for (int i = 0; i < n; ++i) {
      int c = 4 * (i % 15 + 1);
      Register("SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= " +
               std::to_string(c));
      Register(
          "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM "
          "orders o WHERE o.o_custkey = c.c_custkey AND o.o_custkey >= " +
          std::to_string(c) + ")");
    }
    counts.push_back(manager_->NumViews());
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[1], counts[2]);
  EXPECT_EQ(counts[0], 2u);
}

}  // namespace
}  // namespace viewrewrite
