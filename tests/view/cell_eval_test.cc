#include "view/cell_eval.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace viewrewrite {
namespace {

ExprPtr ParsePredicate(const std::string& predicate) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE " + predicate);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  return std::move((*stmt)->where);
}

TEST(CellEvalTest, ComparisonOnAttrValue) {
  CellContext ctx;
  ctx.attr_values["t.a"] = Value::Int(10);
  ctx.attr_values["a"] = Value::Int(10);
  ExprPtr e = ParsePredicate("t.a >= 8");
  auto r = EvalCellPredicate(*e, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
  e = ParsePredicate("a < 10");
  r = EvalCellPredicate(*e, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(CellEvalTest, NullAttrMakesComparisonNotTrue) {
  CellContext ctx;
  ctx.attr_values["a"] = Value::Null();
  ExprPtr e = ParsePredicate("a > 5");
  auto r = EvalCellPredicate(*e, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
}

TEST(CellEvalTest, CoalesceSubstitutesNull) {
  CellContext ctx;
  ctx.attr_values["cnt"] = Value::Null();
  ExprPtr e = ParsePredicate("COALESCE(cnt, 0) < 1");
  auto r = EvalCellPredicate(*e, ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(CellEvalTest, ThreeValuedAndOr) {
  CellContext ctx;
  ctx.attr_values["a"] = Value::Null();
  ctx.attr_values["b"] = Value::Int(1);
  // NULL-compare AND true -> not true.
  auto r = EvalCellPredicate(*ParsePredicate("a > 5 AND b = 1"), ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(*r);
  // NULL-compare OR true -> true.
  r = EvalCellPredicate(*ParsePredicate("a > 5 OR b = 1"), ctx);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(*r);
}

TEST(CellEvalTest, IsNullTests) {
  CellContext ctx;
  ctx.attr_values["a"] = Value::Null();
  ctx.attr_values["b"] = Value::Int(2);
  EXPECT_TRUE(*EvalCellPredicate(*ParsePredicate("a IS NULL"), ctx));
  EXPECT_TRUE(*EvalCellPredicate(*ParsePredicate("b IS NOT NULL"), ctx));
  EXPECT_FALSE(*EvalCellPredicate(*ParsePredicate("b IS NULL"), ctx));
}

TEST(CellEvalTest, ParamsResolve) {
  CellContext ctx;
  ctx.attr_values["a"] = Value::Int(100);
  ctx.params["v0"] = Value::Double(55.5);
  EXPECT_TRUE(*EvalCellPredicate(*ParsePredicate("a > $v0"), ctx));
  auto missing = EvalCellPredicate(*ParsePredicate("a > $nope"), ctx);
  EXPECT_FALSE(missing.ok());
}

TEST(CellEvalTest, ArithmeticAndNot) {
  CellContext ctx;
  ctx.attr_values["a"] = Value::Int(6);
  EXPECT_TRUE(*EvalCellPredicate(*ParsePredicate("a * 2 - 4 = 8"), ctx));
  EXPECT_TRUE(*EvalCellPredicate(*ParsePredicate("NOT a = 5"), ctx));
}

TEST(CellEvalTest, InListOnCells) {
  CellContext ctx;
  ctx.attr_values["a"] = Value::String("f");
  EXPECT_TRUE(
      *EvalCellPredicate(*ParsePredicate("a IN ('f', 'o')"), ctx));
  EXPECT_FALSE(
      *EvalCellPredicate(*ParsePredicate("a NOT IN ('f', 'o')"), ctx));
}

TEST(CellEvalTest, IfposGates) {
  CellContext ctx;
  ctx.attr_values["a"] = Value::Int(3);
  ctx.attr_values["agg"] = Value::Int(9);
  auto v = EvalCellExpr(*ParsePredicate("IFPOS(a > 1, agg) = 9"), ctx);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, Value::Int(1));
  // Gate closed -> NULL -> comparison not true.
  EXPECT_FALSE(
      *EvalCellPredicate(*ParsePredicate("IFPOS(a > 5, agg) = 9"), ctx));
}

TEST(CellEvalTest, UnknownAttributeErrors) {
  CellContext ctx;
  auto r = EvalCellPredicate(*ParsePredicate("zzz = 1"), ctx);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(CellEvalTest, SubqueryInCellPredicateRejected) {
  CellContext ctx;
  ExprPtr e = ParsePredicate("EXISTS (SELECT * FROM u)");
  auto r = EvalCellPredicate(*e, ctx);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
}

TEST(CellEvalTest, QualifiedFallbackToBareName) {
  CellContext ctx;
  ctx.attr_values["price"] = Value::Int(7);
  EXPECT_TRUE(*EvalCellPredicate(*ParsePredicate("o.price = 7"), ctx));
}

}  // namespace
}  // namespace viewrewrite
