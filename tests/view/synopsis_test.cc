#include "view/synopsis.h"

#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "view/view_manager.h"
#include "testing/test_db.h"

namespace viewrewrite {
namespace {

constexpr double kHugeEpsilon = 1e9;  // noise ~ 0: tests exactness

class SynopsisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = testing_support::MakeTestDatabase(3, 40);
    schema_ = &db_->schema();
  }

  /// Registers `sql` (already rewritten / subquery-free) as a view,
  /// publishes with a huge budget, and answers it from cells.
  double AnswerViaSynopsis(const std::string& sql, double epsilon,
                           uint64_t seed = 9) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    Rewriter rewriter(*schema_);
    auto rq = rewriter.Rewrite(**stmt);
    EXPECT_TRUE(rq.ok()) << rq.status();
    ViewManager manager(*schema_, PrivacyPolicy{"customer"});
    auto bound = manager.RegisterRewritten(*rq, nullptr);
    EXPECT_TRUE(bound.ok()) << bound.status();
    Random rng(seed);
    Status pub = manager.Publish(*db_, epsilon, &rng);
    EXPECT_TRUE(pub.ok()) << pub.ToString();
    auto ans = manager.Answer(*bound);
    EXPECT_TRUE(ans.ok()) << ans.status();
    return ans.ok() ? *ans : -1e18;
  }

  double Exact(const std::string& sql) {
    auto stmt = ParseSelect(sql);
    EXPECT_TRUE(stmt.ok());
    Executor executor(*db_);
    auto r = executor.ExecuteScalar(**stmt);
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r : -1e18;
  }

  std::unique_ptr<Database> db_;
  const Schema* schema_ = nullptr;
};

TEST_F(SynopsisTest, CountWithAlignedPredicatesIsExactAtHugeEpsilon) {
  // Predicate boundaries align with the 16-bucket [0,63] quantity domain
  // and the categorical status domain, so cell answering is exact.
  const char* sql =
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64 AND "
      "o.o_status = 'f'";
  EXPECT_NEAR(AnswerViaSynopsis(sql, kHugeEpsilon), Exact(sql), 1e-3);
}

TEST_F(SynopsisTest, JoinCountExact) {
  const char* sql =
      "SELECT COUNT(*) FROM customer c, orders o WHERE c.c_custkey = "
      "o.o_custkey AND c.c_nation = 2";
  EXPECT_NEAR(AnswerViaSynopsis(sql, kHugeEpsilon), Exact(sql), 1e-3);
}

TEST_F(SynopsisTest, SumMeasureExact) {
  const char* sql =
      "SELECT SUM(o_totalprice) FROM orders o WHERE o.o_status = 'o'";
  EXPECT_NEAR(AnswerViaSynopsis(sql, kHugeEpsilon), Exact(sql), 1e-2);
}

TEST_F(SynopsisTest, UnfilteredAggregate) {
  const char* sql = "SELECT COUNT(*) FROM lineitem l";
  EXPECT_NEAR(AnswerViaSynopsis(sql, kHugeEpsilon), Exact(sql), 1e-3);
}

TEST_F(SynopsisTest, CorrelatedQueryAnsweredFromCells) {
  const char* sql =
      "SELECT COUNT(*) FROM customer c WHERE EXISTS (SELECT * FROM orders "
      "o WHERE o.o_custkey = c.c_custkey)";
  EXPECT_NEAR(AnswerViaSynopsis(sql, kHugeEpsilon), Exact(sql), 1e-3);
}

TEST_F(SynopsisTest, NotExistsUsesNullPaddingCell) {
  const char* sql =
      "SELECT COUNT(*) FROM customer c WHERE NOT EXISTS (SELECT * FROM "
      "orders o WHERE o.o_custkey = c.c_custkey)";
  EXPECT_NEAR(AnswerViaSynopsis(sql, kHugeEpsilon), Exact(sql), 1e-3);
}

TEST_F(SynopsisTest, OrSplitCombinationExact) {
  const char* sql =
      "SELECT COUNT(*) FROM orders o WHERE o.o_status = 'f' OR "
      "o.o_totalprice >= 128";
  EXPECT_NEAR(AnswerViaSynopsis(sql, kHugeEpsilon), Exact(sql), 1e-3);
}

TEST_F(SynopsisTest, ChainedQueryAnswered) {
  // Non-correlated subquery: link answered from its own view first.
  const char* sql =
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice > (SELECT "
      "AVG(o2.o_totalprice) FROM orders o2 WHERE o2.o_status = 'f')";
  // The AVG estimate is cell-midpoint based, so allow the count to be off
  // by the rows whose price falls between the true and estimated pivots.
  double truth = Exact(sql);
  double got = AnswerViaSynopsis(sql, kHugeEpsilon);
  EXPECT_NEAR(got, truth, std::max(8.0, 0.25 * truth));
}

TEST_F(SynopsisTest, NoiseDecreasesWithEpsilon) {
  const char* sql =
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64";
  double truth = Exact(sql);
  double err_low_eps = 0;
  double err_high_eps = 0;
  for (uint64_t seed = 0; seed < 10; ++seed) {
    err_low_eps += std::fabs(AnswerViaSynopsis(sql, 0.05, seed) - truth);
    err_high_eps += std::fabs(AnswerViaSynopsis(sql, 100.0, seed) - truth);
  }
  EXPECT_GT(err_low_eps, err_high_eps);
}

TEST_F(SynopsisTest, DeterministicGivenSeed) {
  const char* sql =
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64";
  EXPECT_EQ(AnswerViaSynopsis(sql, 1.0, 42), AnswerViaSynopsis(sql, 1.0, 42));
}

TEST_F(SynopsisTest, PrivacyKeyDirectRelation) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM customer c");
  ASSERT_TRUE(stmt.ok());
  auto key = ResolvePrivacyKey(stmt->get(), *schema_,
                               PrivacyPolicy{"customer"});
  ASSERT_TRUE(key.ok()) << key.status();
  EXPECT_EQ(ToSql(**key), "c.c_custkey");
}

TEST_F(SynopsisTest, PrivacyKeyViaForeignKeyPath) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM lineitem l");
  ASSERT_TRUE(stmt.ok());
  SelectStmt* s = stmt->get();
  auto key = ResolvePrivacyKey(s, *schema_, PrivacyPolicy{"customer"});
  ASSERT_TRUE(key.ok()) << key.status();
  // The path lineitem -> orders -> customer was appended as joins.
  EXPECT_EQ(s->from.size(), 3u);
  ASSERT_NE(s->where, nullptr);
  std::string cond = ToSql(*s->where);
  EXPECT_NE(cond.find("l.l_orderkey"), std::string::npos);
  EXPECT_NE(cond.find("o_custkey"), std::string::npos);
  EXPECT_NE(ToSql(**key).find("c_custkey"), std::string::npos);
}

TEST_F(SynopsisTest, PrivacyKeyPathJoinPreservesRowCount) {
  // FK joins are N:1, so augmenting must not change the multiset of rows.
  auto stmt = ParseSelect("SELECT COUNT(*) FROM lineitem l");
  ASSERT_TRUE(stmt.ok());
  Executor executor(*db_);
  auto before = executor.ExecuteScalar(**stmt);
  ASSERT_TRUE(before.ok());
  SelectStmt* s = stmt->get();
  auto key = ResolvePrivacyKey(s, *schema_, PrivacyPolicy{"customer"});
  ASSERT_TRUE(key.ok());
  auto after = executor.ExecuteScalar(*s);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(*before, *after);
}

TEST_F(SynopsisTest, TruncationStatsPopulated) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM orders o WHERE o.o_totalprice >= 64");
  ASSERT_TRUE(stmt.ok());
  Rewriter rewriter(*schema_);
  auto rq = rewriter.Rewrite(**stmt);
  ASSERT_TRUE(rq.ok());
  ViewManager manager(*schema_, PrivacyPolicy{"customer"});
  auto bound = manager.RegisterRewritten(*rq, nullptr);
  ASSERT_TRUE(bound.ok());
  Random rng(5);
  ASSERT_TRUE(manager.Publish(*db_, 8.0, &rng).ok());
  auto stats = manager.BuildStatsList();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_GE(stats[0].tau, 1);
  EXPECT_GT(stats[0].materialized_rows, 0u);
  EXPECT_LE(stats[0].truncated_rows, stats[0].materialized_rows);
  EXPECT_GT(stats[0].cells, 0u);
}

}  // namespace
}  // namespace viewrewrite
