#include <gtest/gtest.h>

#include "rewrite/rewriter.h"
#include "datagen/tpch.h"
#include "sql/parser.h"
#include "sql/printer.h"
#include "workload/workload.h"

namespace viewrewrite {
namespace {

/// Printer/parser fixed-point property over machine-generated SQL: for
/// every workload family, parse -> print -> parse -> print must converge
/// after one step, and the rewritten output must itself round-trip (the
/// paper's "database compatibility" requirement: rewritten queries are
/// legal SQL again, modulo the internal $param / IFPOS forms which the
/// parser also accepts).
class RoundTripPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripPropertyTest, WorkloadSqlIsAFixedPoint) {
  WorkloadGenerator gen(1, 1234 + GetParam());
  auto queries = gen.Generate(GetParam());
  ASSERT_TRUE(queries.ok());
  size_t n = std::min<size_t>(80, queries->size());
  for (size_t i = 0; i < n; ++i) {
    const std::string& sql = (*queries)[i].sql;
    auto first = ParseSelect(sql);
    ASSERT_TRUE(first.ok()) << sql << "\n" << first.status();
    std::string printed = ToSql(**first);
    auto second = ParseSelect(printed);
    ASSERT_TRUE(second.ok()) << printed << "\n" << second.status();
    EXPECT_EQ(printed, ToSql(**second)) << sql;
  }
}

TEST_P(RoundTripPropertyTest, RewrittenFormsRoundTrip) {
  if (WorkloadGenerator::IsCensus(GetParam())) return;
  Schema schema = MakeTpchSchema();
  Rewriter rewriter(schema);
  WorkloadGenerator gen(1, 98765 + GetParam());
  auto queries = gen.Generate(GetParam());
  ASSERT_TRUE(queries.ok());
  size_t n = std::min<size_t>(30, queries->size());
  for (size_t i = 0; i < n; ++i) {
    auto stmt = ParseSelect((*queries)[i].sql);
    ASSERT_TRUE(stmt.ok());
    auto rq = rewriter.Rewrite(**stmt);
    ASSERT_TRUE(rq.ok()) << (*queries)[i].sql << "\n" << rq.status();
    for (const ChainLink& link : rq->chain) {
      std::string printed = ToSql(*link.query);
      auto again = ParseSelect(printed);
      ASSERT_TRUE(again.ok()) << printed << "\n" << again.status();
      EXPECT_EQ(printed, ToSql(**again));
    }
    for (const auto& term : rq->combination.terms) {
      std::string printed = ToSql(*term.query);
      auto again = ParseSelect(printed);
      ASSERT_TRUE(again.ok()) << printed << "\n" << again.status();
      EXPECT_EQ(printed, ToSql(**again));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, RoundTripPropertyTest,
                         ::testing::Values(1, 6, 11, 16, 21, 26, 31),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "W" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace viewrewrite
