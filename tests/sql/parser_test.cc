#include "sql/parser.h"

#include <gtest/gtest.h>

#include "sql/printer.h"

namespace viewrewrite {
namespace {

SelectStmtPtr MustParse(const std::string& sql) {
  auto r = ParseSelect(sql);
  EXPECT_TRUE(r.ok()) << sql << " -> " << r.status();
  if (!r.ok()) return nullptr;
  return std::move(r).value();
}

TEST(ParserTest, SimpleSelect) {
  auto stmt = MustParse("SELECT count(*) FROM orders");
  ASSERT_NE(stmt, nullptr);
  ASSERT_EQ(stmt->items.size(), 1u);
  EXPECT_EQ(stmt->items[0].expr->kind, ExprKind::kFuncCall);
  ASSERT_EQ(stmt->from.size(), 1u);
  EXPECT_EQ(stmt->from[0]->kind, TableRefKind::kBase);
}

TEST(ParserTest, SelectListWithAliases) {
  auto stmt = MustParse("SELECT a AS x, b y, c FROM t");
  ASSERT_EQ(stmt->items.size(), 3u);
  EXPECT_EQ(stmt->items[0].alias, "x");
  EXPECT_EQ(stmt->items[1].alias, "y");
  EXPECT_EQ(stmt->items[2].alias, "");
}

TEST(ParserTest, WhereWithPrecedence) {
  auto stmt = MustParse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3");
  // AND binds tighter than OR.
  ASSERT_NE(stmt->where, nullptr);
  const auto& root = static_cast<const BinaryExpr&>(*stmt->where);
  EXPECT_EQ(root.op, BinaryOp::kOr);
  const auto& right = static_cast<const BinaryExpr&>(*root.right);
  EXPECT_EQ(right.op, BinaryOp::kAnd);
}

TEST(ParserTest, ArithmeticPrecedence) {
  auto stmt = MustParse("SELECT a + b * c FROM t");
  const auto& root = static_cast<const BinaryExpr&>(*stmt->items[0].expr);
  EXPECT_EQ(root.op, BinaryOp::kAdd);
  const auto& right = static_cast<const BinaryExpr&>(*root.right);
  EXPECT_EQ(right.op, BinaryOp::kMul);
}

TEST(ParserTest, GroupByHaving) {
  auto stmt = MustParse(
      "SELECT o_custkey, COUNT(*) FROM orders GROUP BY o_custkey "
      "HAVING COUNT(*) > 3");
  EXPECT_EQ(stmt->group_by.size(), 1u);
  ASSERT_NE(stmt->having, nullptr);
}

TEST(ParserTest, QualifiedColumnRefs) {
  auto stmt = MustParse("SELECT t.a FROM t");
  const auto& ref = static_cast<const ColumnRefExpr&>(*stmt->items[0].expr);
  EXPECT_EQ(ref.table, "t");
  EXPECT_EQ(ref.column, "a");
}

TEST(ParserTest, JoinWithOn) {
  auto stmt = MustParse("SELECT * FROM a JOIN b ON a.x = b.y");
  ASSERT_EQ(stmt->from.size(), 1u);
  ASSERT_EQ(stmt->from[0]->kind, TableRefKind::kJoin);
  const auto& j = static_cast<const JoinTableRef&>(*stmt->from[0]);
  EXPECT_EQ(j.join_type, JoinType::kInner);
  ASSERT_NE(j.condition, nullptr);
}

TEST(ParserTest, LeftOuterJoin) {
  auto stmt = MustParse("SELECT * FROM a LEFT OUTER JOIN b ON a.x = b.y");
  const auto& j = static_cast<const JoinTableRef&>(*stmt->from[0]);
  EXPECT_EQ(j.join_type, JoinType::kLeft);
}

TEST(ParserTest, JoinWithoutOnIsError) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM a JOIN b").ok());
}

TEST(ParserTest, DerivedTableRequiresAlias) {
  EXPECT_FALSE(ParseSelect("SELECT * FROM (SELECT a FROM t)").ok());
  auto stmt = MustParse("SELECT * FROM (SELECT a FROM t) AS d");
  ASSERT_EQ(stmt->from[0]->kind, TableRefKind::kDerived);
  EXPECT_EQ(static_cast<const DerivedTableRef&>(*stmt->from[0]).alias, "d");
}

TEST(ParserTest, WithClause) {
  auto stmt = MustParse(
      "WITH t AS (SELECT a FROM u), s AS (SELECT b FROM v) "
      "SELECT * FROM t, s");
  ASSERT_EQ(stmt->with.size(), 2u);
  EXPECT_EQ(stmt->with[0].name, "t");
  EXPECT_EQ(stmt->with[1].name, "s");
}

TEST(ParserTest, ScalarSubquery) {
  auto stmt =
      MustParse("SELECT * FROM t WHERE a > (SELECT AVG(b) FROM u)");
  const auto& cmp = static_cast<const BinaryExpr&>(*stmt->where);
  EXPECT_EQ(cmp.right->kind, ExprKind::kScalarSubquery);
}

TEST(ParserTest, InSubqueryAndList) {
  auto stmt = MustParse("SELECT * FROM t WHERE a IN (SELECT b FROM u)");
  ASSERT_EQ(stmt->where->kind, ExprKind::kIn);
  EXPECT_NE(static_cast<const InExpr&>(*stmt->where).subquery, nullptr);

  stmt = MustParse("SELECT * FROM t WHERE a IN (1, 2, 3)");
  const auto& in = static_cast<const InExpr&>(*stmt->where);
  EXPECT_EQ(in.subquery, nullptr);
  EXPECT_EQ(in.value_list.size(), 3u);
}

TEST(ParserTest, NotInFoldsNegation) {
  auto stmt = MustParse("SELECT * FROM t WHERE a NOT IN (SELECT b FROM u)");
  ASSERT_EQ(stmt->where->kind, ExprKind::kIn);
  EXPECT_TRUE(static_cast<const InExpr&>(*stmt->where).negated);
}

TEST(ParserTest, ExistsAndNotExists) {
  auto stmt = MustParse("SELECT * FROM t WHERE EXISTS (SELECT * FROM u)");
  ASSERT_EQ(stmt->where->kind, ExprKind::kExists);
  EXPECT_FALSE(static_cast<const ExistsExpr&>(*stmt->where).negated);

  stmt = MustParse("SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)");
  ASSERT_EQ(stmt->where->kind, ExprKind::kExists);
  EXPECT_TRUE(static_cast<const ExistsExpr&>(*stmt->where).negated);
}

TEST(ParserTest, QuantifiedComparisons) {
  auto stmt = MustParse("SELECT * FROM t WHERE a > ALL (SELECT b FROM u)");
  ASSERT_EQ(stmt->where->kind, ExprKind::kQuantifiedCmp);
  const auto& q = static_cast<const QuantifiedCmpExpr&>(*stmt->where);
  EXPECT_EQ(q.quantifier, Quantifier::kAll);
  EXPECT_EQ(q.op, BinaryOp::kGt);

  stmt = MustParse("SELECT * FROM t WHERE a = SOME (SELECT b FROM u)");
  const auto& q2 = static_cast<const QuantifiedCmpExpr&>(*stmt->where);
  EXPECT_EQ(q2.quantifier, Quantifier::kAny);  // SOME == ANY
}

TEST(ParserTest, BetweenDesugarsToRange) {
  auto stmt = MustParse("SELECT * FROM t WHERE a BETWEEN 1 AND 5");
  EXPECT_EQ(ToSql(*stmt->where), "((a >= 1) AND (a <= 5))");
}

TEST(ParserTest, IsNullBecomesFunction) {
  auto stmt = MustParse("SELECT * FROM t WHERE a IS NULL");
  EXPECT_EQ(ToSql(*stmt->where), "ISNULL(a)");
  stmt = MustParse("SELECT * FROM t WHERE a IS NOT NULL");
  EXPECT_EQ(ToSql(*stmt->where), "ISNOTNULL(a)");
}

TEST(ParserTest, DistinctAggregates) {
  auto stmt = MustParse("SELECT COUNT(DISTINCT a) FROM t");
  const auto& f = static_cast<const FuncCallExpr&>(*stmt->items[0].expr);
  EXPECT_TRUE(f.distinct);
  EXPECT_EQ(f.name, "count");
}

TEST(ParserTest, ParamPlaceholder) {
  auto stmt = MustParse("SELECT count(*) FROM t WHERE a > $v0");
  const auto& cmp = static_cast<const BinaryExpr&>(*stmt->where);
  ASSERT_EQ(cmp.right->kind, ExprKind::kParam);
  EXPECT_EQ(static_cast<const ParamExpr&>(*cmp.right).name, "v0");
}

TEST(ParserTest, TrailingGarbageIsError) {
  EXPECT_FALSE(ParseSelect("SELECT a FROM t xyzzy garbage garbage").ok());
}

TEST(ParserTest, TrailingSemicolonOk) {
  EXPECT_TRUE(ParseSelect("SELECT a FROM t;").ok());
}

TEST(ParserTest, NegativeNumbers) {
  auto stmt = MustParse("SELECT -a, -3 FROM t WHERE a > -5");
  EXPECT_EQ(stmt->items[0].expr->kind, ExprKind::kUnary);
}

TEST(ParserTest, NestedSubqueriesParse) {
  auto stmt = MustParse(
      "SELECT count(*) FROM t WHERE a IN (SELECT b FROM u WHERE c > "
      "(SELECT MAX(d) FROM v))");
  ASSERT_EQ(stmt->where->kind, ExprKind::kIn);
}

}  // namespace
}  // namespace viewrewrite
