#include "sql/ast.h"

#include <gtest/gtest.h>

#include "sql/parser.h"
#include "sql/printer.h"

namespace viewrewrite {
namespace {

TEST(AstTest, BinaryOpHelpers) {
  EXPECT_TRUE(IsComparisonOp(BinaryOp::kEq));
  EXPECT_TRUE(IsComparisonOp(BinaryOp::kGe));
  EXPECT_FALSE(IsComparisonOp(BinaryOp::kAdd));
  EXPECT_FALSE(IsComparisonOp(BinaryOp::kAnd));

  EXPECT_EQ(MirrorComparison(BinaryOp::kLt), BinaryOp::kGt);
  EXPECT_EQ(MirrorComparison(BinaryOp::kLe), BinaryOp::kGe);
  EXPECT_EQ(MirrorComparison(BinaryOp::kEq), BinaryOp::kEq);

  EXPECT_EQ(NegateComparison(BinaryOp::kLt), BinaryOp::kGe);
  EXPECT_EQ(NegateComparison(BinaryOp::kEq), BinaryOp::kNe);
  EXPECT_EQ(NegateComparison(BinaryOp::kGe), BinaryOp::kLt);
}

TEST(AstTest, MakeAndOrTolerateNull) {
  ExprPtr a = MakeIntLiteral(1);
  ExprPtr combined = MakeAnd(nullptr, std::move(a));
  ASSERT_NE(combined, nullptr);
  EXPECT_EQ(ToSql(*combined), "1");
  combined = MakeAnd(std::move(combined), nullptr);
  EXPECT_EQ(ToSql(*combined), "1");
  EXPECT_EQ(MakeOr(nullptr, nullptr), nullptr);
}

TEST(AstTest, CollectConjunctsFlattensNestedAnds) {
  auto stmt = ParseSelect(
      "SELECT * FROM t WHERE a = 1 AND (b = 2 AND (c = 3 AND d = 4))");
  ASSERT_TRUE(stmt.ok());
  auto conjuncts = CollectConjuncts((*stmt)->where.get());
  EXPECT_EQ(conjuncts.size(), 4u);
}

TEST(AstTest, CollectConjunctsStopsAtOr) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE a = 1 AND (b = 2 OR c = 3)");
  ASSERT_TRUE(stmt.ok());
  auto conjuncts = CollectConjuncts((*stmt)->where.get());
  ASSERT_EQ(conjuncts.size(), 2u);
  EXPECT_EQ(ToSql(*conjuncts[1]), "((b = 2) OR (c = 3))");
}

TEST(AstTest, CollectConjunctsOfNull) {
  EXPECT_TRUE(CollectConjuncts(nullptr).empty());
}

TEST(AstTest, ConjunctionOfRebuilds) {
  auto stmt = ParseSelect("SELECT * FROM t WHERE a = 1 AND b = 2");
  ASSERT_TRUE(stmt.ok());
  auto conjuncts = CollectConjuncts((*stmt)->where.get());
  ExprPtr rebuilt = ConjunctionOf(conjuncts);
  EXPECT_EQ(ToSql(*rebuilt), ToSql(*(*stmt)->where));
  EXPECT_EQ(ConjunctionOf({}), nullptr);
}

TEST(AstTest, CloneIsDeep) {
  auto stmt = ParseSelect(
      "WITH t AS (SELECT a FROM u) SELECT COUNT(*) FROM t, (SELECT b FROM "
      "v WHERE b IN (SELECT c FROM w)) d WHERE t.a = d.b AND EXISTS "
      "(SELECT * FROM x) AND t.a > ANY (SELECT y FROM z)");
  ASSERT_TRUE(stmt.ok());
  SelectStmtPtr clone = (*stmt)->Clone();
  std::string before = ToSql(**stmt);
  EXPECT_EQ(before, ToSql(*clone));
  // Mutating the clone must not affect the original.
  clone->where = nullptr;
  clone->items.clear();
  clone->with.clear();
  EXPECT_EQ(ToSql(**stmt), before);
}

TEST(AstTest, RewrittenQueryClone) {
  auto q = ParseSelect("SELECT COUNT(*) FROM t WHERE a > $v0");
  ASSERT_TRUE(q.ok());
  RewrittenQuery rq;
  auto link = ParseSelect("SELECT AVG(b) FROM u");
  ASSERT_TRUE(link.ok());
  rq.chain.push_back(ChainLink{"v0", std::move(link).value()});
  QueryCombination::Term term;
  term.coeff = -1.0;
  term.query = std::move(q).value();
  rq.combination.terms.push_back(std::move(term));

  RewrittenQuery clone = rq.Clone();
  EXPECT_EQ(ToSql(rq), ToSql(clone));
  EXPECT_EQ(clone.chain[0].var, "v0");
  EXPECT_EQ(clone.combination.terms[0].coeff, -1.0);
}

TEST(AstTest, FuncCallAggregateDetection) {
  auto is_agg = [](const char* name) {
    FuncCallExpr f(name, {});
    return f.IsAggregate();
  };
  EXPECT_TRUE(is_agg("count"));
  EXPECT_TRUE(is_agg("sum"));
  EXPECT_TRUE(is_agg("avg"));
  EXPECT_TRUE(is_agg("min"));
  EXPECT_TRUE(is_agg("max"));
  EXPECT_FALSE(is_agg("coalesce"));
  EXPECT_FALSE(is_agg("isnull"));
}

TEST(AstTest, ColumnRefFullName) {
  ColumnRefExpr qualified("t", "c");
  ColumnRefExpr bare("", "c");
  EXPECT_EQ(qualified.FullName(), "t.c");
  EXPECT_EQ(bare.FullName(), "c");
}

TEST(AstTest, BaseTableBindingName) {
  BaseTableRef with_alias("orders", "o");
  BaseTableRef without("orders", "");
  EXPECT_EQ(with_alias.BindingName(), "o");
  EXPECT_EQ(without.BindingName(), "orders");
}

}  // namespace
}  // namespace viewrewrite
