// Adversarial parser inputs: each case must come back as a *typed* Status
// (or parse successfully) — never a crash, stack overflow, unbounded
// allocation, or sanitizer finding. ci/check.sh runs this suite under
// both ASan+UBSan and TSan.

#include <gtest/gtest.h>

#include <string>

#include "common/limits.h"
#include "sql/parser.h"

namespace viewrewrite {
namespace {

std::string Repeat(const std::string& s, size_t n) {
  std::string out;
  out.reserve(s.size() * n);
  for (size_t i = 0; i < n; ++i) out += s;
  return out;
}

// ---- Recursion / chain depth -------------------------------------------

TEST(AdversarialTest, ThousandDeepNestedParensRefusedNotCrashed) {
  std::string sql = "SELECT COUNT(*) FROM orders WHERE " + Repeat("(", 1000) +
                    "o_orderkey = 1" + Repeat(")", 1000);
  auto stmt = ParseSelect(sql);
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted)
      << stmt.status();
}

TEST(AdversarialTest, HundredThousandDeepParensStillTyped) {
  // Two orders of magnitude past the limit: the depth guard must trip
  // long before the call stack is at risk.
  std::string sql = "SELECT COUNT(*) FROM t WHERE " + Repeat("(", 100000) +
                    "x = 1" + Repeat(")", 100000);
  auto stmt = ParseSelect(sql);
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialTest, DeepNotChainRefused) {
  std::string sql =
      "SELECT COUNT(*) FROM orders WHERE " + Repeat("NOT ", 5000) + "x = 1";
  auto stmt = ParseSelect(sql);
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialTest, DeepUnaryMinusChainRefused) {
  std::string sql =
      "SELECT COUNT(*) FROM orders WHERE x = " + Repeat("- ", 5000) + "1";
  auto stmt = ParseSelect(sql);
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialTest, LongAndChainRefusedBeyondDepthLimit) {
  // AND chains are built iteratively (left-deep), so they don't recurse in
  // the parser — but the resulting tree would still recurse in every
  // downstream walker, so the chain cap must refuse them too.
  std::string sql = "SELECT COUNT(*) FROM orders WHERE x = 0";
  for (int i = 1; i <= 2000; ++i) {
    sql += " AND x = " + std::to_string(i);
  }
  auto stmt = ParseSelect(sql);
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialTest, LongJoinChainRefused) {
  std::string sql = "SELECT COUNT(*) FROM t0";
  for (int i = 1; i <= 2000; ++i) {
    sql += " JOIN t" + std::to_string(i) + " ON a = b";
  }
  auto stmt = ParseSelect(sql);
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialTest, ModerateNestingStillParses) {
  // The guards must not refuse reasonable queries: 50 nested parens is
  // well inside the default depth budget.
  std::string sql = "SELECT COUNT(*) FROM orders WHERE " + Repeat("(", 50) +
                    "o_orderkey = 1" + Repeat(")", 50);
  auto stmt = ParseSelect(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status();
}

// ---- Width: huge IN lists, overlong identifiers ------------------------

TEST(AdversarialTest, TenThousandElementInListHandled) {
  std::string sql = "SELECT COUNT(*) FROM orders WHERE o_orderkey IN (0";
  for (int i = 1; i < 10000; ++i) sql += "," + std::to_string(i);
  sql += ")";
  // Within the default token/node budgets this parses; the contract under
  // attack is simply "typed status or success, never crash".
  auto stmt = ParseSelect(sql);
  if (!stmt.ok()) {
    EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted);
  }
}

TEST(AdversarialTest, MillionElementInListRefused) {
  std::string sql = "SELECT COUNT(*) FROM orders WHERE o_orderkey IN (0";
  for (int i = 1; i < 1000000; ++i) sql += ",1";
  sql += ")";
  auto stmt = ParseSelect(sql);
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted);
}

TEST(AdversarialTest, OverlongIdentifierHandled) {
  std::string sql = "SELECT COUNT(*) FROM " + std::string(100000, 'x');
  auto stmt = ParseSelect(sql);  // one huge token is fine or refused —
  if (!stmt.ok()) {              // typed either way
    EXPECT_TRUE(stmt.status().code() == StatusCode::kResourceExhausted ||
                stmt.status().code() == StatusCode::kParseError)
        << stmt.status();
  }
}

TEST(AdversarialTest, OversizedSqlTextRefusedBeforeScanning) {
  ResourceLimits limits;
  limits.max_sql_bytes = 1024;
  std::string sql =
      "SELECT COUNT(*) FROM orders -- " + std::string(4096, 'a');
  auto stmt = ParseSelect(sql, limits);
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted);
}

// ---- Malformed lexical input -------------------------------------------

TEST(AdversarialTest, UnterminatedStringTyped) {
  auto stmt = ParseSelect("SELECT COUNT(*) FROM t WHERE s = 'oops");
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kParseError) << stmt.status();
}

TEST(AdversarialTest, UnterminatedBlockCommentTyped) {
  // The dialect has no /* */ comments; the bytes must surface as a parse
  // error (trailing input), not confuse the tokenizer.
  auto stmt = ParseSelect("SELECT COUNT(*) FROM t /* never closed");
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kParseError) << stmt.status();
}

TEST(AdversarialTest, EmbeddedNulByteTyped) {
  std::string sql = "SELECT COUNT(*) FROM t WHERE s = 'a";
  sql.push_back('\0');
  sql += "b'";
  auto stmt = ParseSelect(sql);
  // NUL inside a string literal either tokenizes as data or is refused;
  // the byte must never truncate scanning or read past the buffer.
  if (!stmt.ok()) {
    EXPECT_EQ(stmt.status().code(), StatusCode::kParseError) << stmt.status();
  }
}

TEST(AdversarialTest, AllByteValuesNeverCrash) {
  std::string sql;
  for (int b = 0; b < 256; ++b) sql.push_back(static_cast<char>(b));
  auto stmt = ParseSelect(sql);
  EXPECT_FALSE(stmt.ok());
}

TEST(AdversarialTest, BareStarInExpressionPositionRejected) {
  // Found by fuzz_sql_parser: `(*)` used to parse as a StarExpr primary,
  // producing statements whose canonical rendering (`* AS cnt`) could not
  // be reparsed. `*` is only valid as a whole select item or inside
  // COUNT(*).
  auto stmt = ParseSelect(
      "SELECT o_custkey, (*) AS cnt FROM orders GROUP BY o_custkey");
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kParseError) << stmt.status();
  // The legitimate star forms keep working.
  EXPECT_TRUE(ParseSelect("SELECT * FROM orders").ok());
  EXPECT_TRUE(ParseSelect("SELECT COUNT(*) FROM orders").ok());
}

// ---- Integer literal overflow (the strtoll satellite) ------------------

TEST(AdversarialTest, LimitClauseOverflowIsInvalidArgument) {
  auto stmt =
      ParseSelect("SELECT COUNT(*) FROM t LIMIT 99999999999999999999999");
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kInvalidArgument)
      << stmt.status();
}

TEST(AdversarialTest, IntegerLiteralOverflowIsInvalidArgument) {
  auto stmt = ParseSelect(
      "SELECT COUNT(*) FROM t WHERE x = 170141183460469231731687303");
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kInvalidArgument)
      << stmt.status();
}

TEST(AdversarialTest, Int64MaxLiteralStillParses) {
  auto stmt =
      ParseSelect("SELECT COUNT(*) FROM t WHERE x = 9223372036854775807");
  EXPECT_TRUE(stmt.ok()) << stmt.status();
}

TEST(AdversarialTest, Int64MinLiteralStillParses) {
  // INT64_MIN's magnitude (2^63) overflows a bare integer token; the
  // parser folds the unary minus into the literal before the range check
  // so the full int64 domain stays expressible.
  auto stmt =
      ParseSelect("SELECT COUNT(*) FROM t WHERE x = -9223372036854775808");
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  // Positive 2^63 on its own is still out of range.
  auto bare =
      ParseSelect("SELECT COUNT(*) FROM t WHERE x = 9223372036854775808");
  ASSERT_FALSE(bare.ok());
  EXPECT_EQ(bare.status().code(), StatusCode::kInvalidArgument)
      << bare.status();
  // And so is double-negated 2^63: -(-INT64_MIN) does not fit.
  auto dbl =
      ParseSelect("SELECT COUNT(*) FROM t WHERE x = - -9223372036854775808");
  ASSERT_FALSE(dbl.ok());
  EXPECT_EQ(dbl.status().code(), StatusCode::kInvalidArgument)
      << dbl.status();
}

// ---- Token budget -------------------------------------------------------

TEST(AdversarialTest, TokenFloodRefused) {
  ResourceLimits limits;
  limits.max_tokens = 64;
  std::string sql = "SELECT COUNT(*) FROM t WHERE x IN (1";
  for (int i = 0; i < 200; ++i) sql += ",1";
  sql += ")";
  auto stmt = ParseSelect(sql, limits);
  ASSERT_FALSE(stmt.ok());
  EXPECT_EQ(stmt.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace viewrewrite
