#include "sql/token.h"

#include <gtest/gtest.h>

namespace viewrewrite {
namespace {

std::vector<Token> MustTokenize(const std::string& sql) {
  auto r = Tokenize(sql);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(TokenTest, KeywordsUppercasedIdentifiersLowercased) {
  auto toks = MustTokenize("SELECT Foo FROM Bar");
  ASSERT_EQ(toks.size(), 5u);  // + end token
  EXPECT_EQ(toks[0].type, TokenType::kKeyword);
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[1].text, "foo");
  EXPECT_EQ(toks[2].text, "FROM");
  EXPECT_EQ(toks[3].text, "bar");
  EXPECT_EQ(toks[4].type, TokenType::kEnd);
}

TEST(TokenTest, NumbersIntAndFloat) {
  auto toks = MustTokenize("123 4.5 .5");
  EXPECT_EQ(toks[0].type, TokenType::kInteger);
  EXPECT_EQ(toks[0].text, "123");
  EXPECT_EQ(toks[1].type, TokenType::kFloat);
  EXPECT_EQ(toks[1].text, "4.5");
  EXPECT_EQ(toks[2].type, TokenType::kFloat);
  EXPECT_EQ(toks[2].text, ".5");
}

TEST(TokenTest, StringLiteralWithEscapedQuote) {
  auto toks = MustTokenize("'o''brien'");
  EXPECT_EQ(toks[0].type, TokenType::kString);
  EXPECT_EQ(toks[0].text, "o'brien");
}

TEST(TokenTest, UnterminatedStringErrors) {
  auto r = Tokenize("'abc");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kParseError);
}

TEST(TokenTest, MultiCharOperators) {
  auto toks = MustTokenize("a <> b <= c >= d != e");
  EXPECT_EQ(toks[1].text, "<>");
  EXPECT_EQ(toks[3].text, "<=");
  EXPECT_EQ(toks[5].text, ">=");
  // != normalizes to <>
  EXPECT_EQ(toks[7].text, "<>");
}

TEST(TokenTest, LineCommentsSkipped) {
  auto toks = MustTokenize("SELECT -- comment here\n 1");
  EXPECT_EQ(toks[0].text, "SELECT");
  EXPECT_EQ(toks[1].type, TokenType::kInteger);
}

TEST(TokenTest, UnexpectedCharacterErrors) {
  auto r = Tokenize("SELECT #");
  EXPECT_FALSE(r.ok());
}

TEST(TokenTest, OffsetsRecorded) {
  auto toks = MustTokenize("SELECT a");
  EXPECT_EQ(toks[0].offset, 0u);
  EXPECT_EQ(toks[1].offset, 7u);
}

TEST(TokenTest, DollarParamTokenized) {
  auto toks = MustTokenize("$v0");
  EXPECT_EQ(toks[0].type, TokenType::kOperator);
  EXPECT_EQ(toks[0].text, "$");
  EXPECT_EQ(toks[1].type, TokenType::kIdentifier);
  EXPECT_EQ(toks[1].text, "v0");
}

}  // namespace
}  // namespace viewrewrite
