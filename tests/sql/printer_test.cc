#include "sql/printer.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace viewrewrite {
namespace {

/// Round-trip: parse -> print -> parse -> print must be a fixed point.
void ExpectRoundTrip(const std::string& sql) {
  auto first = ParseSelect(sql);
  ASSERT_TRUE(first.ok()) << sql << " -> " << first.status();
  std::string printed = ToSql(**first);
  auto second = ParseSelect(printed);
  ASSERT_TRUE(second.ok()) << printed << " -> " << second.status();
  EXPECT_EQ(printed, ToSql(**second)) << "not a fixed point: " << sql;
}

TEST(PrinterTest, CanonicalizesCase) {
  auto stmt = ParseSelect("select Count(*) from Orders o");
  ASSERT_TRUE(stmt.ok());
  EXPECT_EQ(ToSql(**stmt), "SELECT COUNT(*) FROM orders AS o");
}

TEST(PrinterTest, RoundTripSimple) {
  ExpectRoundTrip("SELECT a, b FROM t WHERE a > 3 AND b = 'x'");
}

TEST(PrinterTest, RoundTripJoins) {
  ExpectRoundTrip(
      "SELECT COUNT(*) FROM a JOIN b ON a.x = b.y LEFT JOIN c ON b.z = c.w");
}

TEST(PrinterTest, RoundTripDerivedTable) {
  ExpectRoundTrip(
      "SELECT COUNT(*) FROM (SELECT o_custkey, COUNT(*) AS cnt FROM orders "
      "GROUP BY o_custkey HAVING COUNT(*) > 2) AS d WHERE d.cnt < 5");
}

TEST(PrinterTest, RoundTripSubqueries) {
  ExpectRoundTrip(
      "SELECT COUNT(*) FROM t WHERE a IN (SELECT b FROM u) AND "
      "EXISTS (SELECT * FROM v) AND c > ANY (SELECT d FROM w)");
}

TEST(PrinterTest, RoundTripWith) {
  ExpectRoundTrip(
      "WITH x AS (SELECT a FROM t) SELECT COUNT(*) FROM x WHERE a = 1");
}

TEST(PrinterTest, RoundTripParams) {
  ExpectRoundTrip("SELECT COUNT(*) FROM t WHERE a > $v1 OR b < 2");
}

TEST(PrinterTest, StructurallyEqualQueriesPrintIdentically) {
  auto a = ParseSelect("SELECT COUNT(*) FROM t WHERE x=1 AND y=2");
  auto b = ParseSelect("select count ( * ) from t where x = 1 and y = 2");
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(ToSql(**a), ToSql(**b));
}

TEST(PrinterTest, RewrittenQueryRendering) {
  auto q1 = ParseSelect("SELECT COUNT(*) FROM t WHERE a = 1");
  auto q2 = ParseSelect("SELECT COUNT(*) FROM t WHERE b = 2");
  ASSERT_TRUE(q1.ok() && q2.ok());
  RewrittenQuery rq;
  QueryCombination::Term t1;
  t1.coeff = 1.0;
  t1.query = std::move(q1).value();
  QueryCombination::Term t2;
  t2.coeff = -1.0;
  t2.query = std::move(q2).value();
  rq.combination.terms.push_back(std::move(t1));
  rq.combination.terms.push_back(std::move(t2));
  std::string s = ToSql(rq);
  EXPECT_NE(s.find(" - "), std::string::npos);
  EXPECT_NE(s.find("WHERE (a = 1)"), std::string::npos);
}

}  // namespace
}  // namespace viewrewrite
