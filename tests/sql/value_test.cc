#include "sql/value.h"

#include <gtest/gtest.h>

namespace viewrewrite {
namespace {

TEST(ValueTest, TypePredicates) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_TRUE(Value::Int(3).is_int());
  EXPECT_TRUE(Value::Double(1.5).is_double());
  EXPECT_TRUE(Value::String("x").is_string());
  EXPECT_TRUE(Value::Int(3).is_numeric());
  EXPECT_TRUE(Value::Double(1.5).is_numeric());
  EXPECT_FALSE(Value::String("x").is_numeric());
}

TEST(ValueTest, ToStringRendersSqlLiterals) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int(42).ToString(), "42");
  EXPECT_EQ(Value::String("ab").ToString(), "'ab'");
  EXPECT_EQ(Value::String("o'brien").ToString(), "'o''brien'");
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value::Int(2), Value::Double(2.0));
  EXPECT_NE(Value::Int(2), Value::Double(2.5));
  EXPECT_NE(Value::Int(2), Value::String("2"));
}

TEST(ValueTest, TotalOrderRanksNullNumbersStrings) {
  EXPECT_LT(Value::Null(), Value::Int(0));
  EXPECT_LT(Value::Int(100), Value::String(""));
  EXPECT_LT(Value::Int(1), Value::Int(2));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_FALSE(Value::Null() < Value::Null());
}

TEST(ValueTest, CompareSqlNumeric) {
  auto r = Value::Int(3).CompareSql(Value::Double(3.0));
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->is_null);
  EXPECT_EQ(r->cmp, 0);

  r = Value::Int(2).CompareSql(Value::Int(5));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->cmp, 0);
}

TEST(ValueTest, CompareSqlNullIsUnknown) {
  auto r = Value::Null().CompareSql(Value::Int(1));
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null);
  r = Value::Int(1).CompareSql(Value::Null());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->is_null);
}

TEST(ValueTest, CompareSqlTypeMismatchErrors) {
  auto r = Value::Int(1).CompareSql(Value::String("1"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeMismatch);
}

TEST(ValueTest, CompareSqlStrings) {
  auto r = Value::String("abc").CompareSql(Value::String("abd"));
  ASSERT_TRUE(r.ok());
  EXPECT_LT(r->cmp, 0);
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value::Int(2).Hash(), Value::Double(2.0).Hash());
  EXPECT_EQ(Value::String("x").Hash(), Value::String("x").Hash());
}

TEST(ValueTest, VectorHashDistinguishesOrder) {
  ValueVectorHash h;
  std::vector<Value> a = {Value::Int(1), Value::Int(2)};
  std::vector<Value> b = {Value::Int(2), Value::Int(1)};
  EXPECT_NE(h(a), h(b));
}

}  // namespace
}  // namespace viewrewrite
