#include <gtest/gtest.h>

#include <set>

#include "datagen/census.h"
#include "datagen/tpch.h"

namespace viewrewrite {
namespace {

TEST(TpchTest, SchemaHasEightRelations) {
  Schema schema = MakeTpchSchema();
  EXPECT_EQ(schema.TableNames().size(), 8u);
  for (const char* name :
       {"region", "nation", "supplier", "part", "partsupp", "customer",
        "orders", "lineitem"}) {
    EXPECT_NE(schema.FindTable(name), nullptr) << name;
  }
}

TEST(TpchTest, ForeignKeyGraphMatchesTpch) {
  Schema schema = MakeTpchSchema();
  EXPECT_TRUE(schema.References("lineitem", "orders"));
  EXPECT_TRUE(schema.References("lineitem", "customer"));
  EXPECT_TRUE(schema.References("orders", "customer"));
  EXPECT_TRUE(schema.References("customer", "nation"));
  EXPECT_TRUE(schema.References("customer", "region"));
  EXPECT_TRUE(schema.References("partsupp", "part"));
  EXPECT_FALSE(schema.References("part", "supplier"));
}

TEST(TpchTest, CardinalitiesScaleLinearly) {
  TpchConfig c1;
  c1.scale = 1;
  TpchConfig c2;
  c2.scale = 2;
  auto db1 = GenerateTpch(c1);
  auto db2 = GenerateTpch(c2);
  EXPECT_EQ(db1->FindTable("customer")->NumRows(), 750u);
  EXPECT_EQ(db2->FindTable("customer")->NumRows(), 1500u);
  EXPECT_EQ(db1->FindTable("region")->NumRows(), 5u);
  EXPECT_EQ(db2->FindTable("region")->NumRows(), 5u);
  EXPECT_GT(db2->FindTable("orders")->NumRows(),
            db1->FindTable("orders")->NumRows());
}

TEST(TpchTest, Deterministic) {
  TpchConfig c;
  auto a = GenerateTpch(c);
  auto b = GenerateTpch(c);
  EXPECT_EQ(a->TotalRows(), b->TotalRows());
  EXPECT_EQ(a->FindTable("orders")->rows(), b->FindTable("orders")->rows());
}

TEST(TpchTest, ForeignKeysResolve) {
  TpchConfig c;
  auto db = GenerateTpch(c);
  std::set<Value> custkeys;
  for (const Row& r : db->FindTable("customer")->rows()) {
    custkeys.insert(r[0]);
  }
  const TableSchema& orders = db->FindTable("orders")->schema();
  auto ck_idx = orders.ColumnIndex("o_custkey");
  ASSERT_TRUE(ck_idx.has_value());
  for (const Row& r : db->FindTable("orders")->rows()) {
    ASSERT_TRUE(custkeys.count(r[*ck_idx]) > 0);
  }
}

TEST(TpchTest, FanOutStaysUnderCountBound) {
  TpchConfig c;
  auto db = GenerateTpch(c);
  std::map<Value, int> per_cust;
  const TableSchema& orders = db->FindTable("orders")->schema();
  auto ck = *orders.ColumnIndex("o_custkey");
  for (const Row& r : db->FindTable("orders")->rows()) {
    ++per_cust[r[ck]];
  }
  for (const auto& [k, n] : per_cust) {
    (void)k;
    ASSERT_LT(n, 64);  // synopsis count-domain bound
  }
}

TEST(TpchTest, ValuesStayInRegisteredDomains) {
  TpchConfig c;
  auto db = GenerateTpch(c);
  for (const std::string& tname : db->schema().TableNames()) {
    const Table* t = db->FindTable(tname);
    const auto& cols = t->schema().columns();
    for (const Row& r : t->rows()) {
      for (size_t i = 0; i < cols.size(); ++i) {
        if (!cols[i].domain.IsBounded()) continue;
        ASSERT_GE(cols[i].domain.CellIndex(r[i]), 0)
            << tname << "." << cols[i].name << " = " << r[i].ToString();
      }
    }
  }
}

TEST(CensusTest, SchemaAndScale) {
  Schema schema = MakeCensusSchema();
  EXPECT_EQ(schema.TableNames().size(), 2u);
  EXPECT_TRUE(schema.References("person", "household"));

  CensusConfig c;
  auto db = GenerateCensus(c);
  EXPECT_EQ(db->FindTable("household")->NumRows(), 2000u);
  EXPECT_GT(db->FindTable("person")->NumRows(), 2000u);
}

TEST(CensusTest, HouseholdSizeMatchesPersons) {
  CensusConfig c;
  c.households = 100;
  auto db = GenerateCensus(c);
  std::map<Value, int64_t> persons_per_household;
  for (const Row& r : db->FindTable("person")->rows()) {
    ++persons_per_household[r[1]];
  }
  const Table* hh = db->FindTable("household");
  auto size_idx = *hh->schema().ColumnIndex("h_size");
  for (const Row& r : hh->rows()) {
    EXPECT_EQ(persons_per_household[r[0]], r[size_idx].AsInt());
  }
}

TEST(CensusTest, Deterministic) {
  CensusConfig c;
  auto a = GenerateCensus(c);
  auto b = GenerateCensus(c);
  EXPECT_EQ(a->FindTable("person")->rows(), b->FindTable("person")->rows());
}

}  // namespace
}  // namespace viewrewrite
