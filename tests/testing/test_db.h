#ifndef VIEWREWRITE_TESTS_TESTING_TEST_DB_H_
#define VIEWREWRITE_TESTS_TESTING_TEST_DB_H_

#include <memory>

#include "common/random.h"
#include "storage/table.h"

namespace viewrewrite {
namespace testing_support {

/// A three-relation mini schema shaped like the paper's TPC-H subset:
///   customer(c_custkey PK, c_nation, c_acctbal)
///   orders(o_orderkey PK, o_custkey -> customer, o_status, o_totalprice)
///   lineitem(l_linekey PK, l_orderkey -> orders, l_quantity, l_price)
inline Schema MakeTestSchema() {
  Schema schema;
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"c_custkey", DataType::kInt,
                    ColumnDomain::IntBuckets(0, 63, 16)});
    cols.push_back({"c_nation", DataType::kInt,
                    ColumnDomain::Categorical({Value::Int(0), Value::Int(1),
                                               Value::Int(2), Value::Int(3),
                                               Value::Int(4)})});
    cols.push_back(
        {"c_acctbal", DataType::kInt, ColumnDomain::IntBuckets(0, 63, 16)});
    (void)schema.AddTable(TableSchema("customer", std::move(cols),
                                      "c_custkey"));
  }
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"o_orderkey", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"o_custkey", DataType::kInt,
                    ColumnDomain::IntBuckets(0, 63, 16)});
    cols.push_back({"o_status", DataType::kString,
                    ColumnDomain::Categorical({Value::String("f"),
                                               Value::String("o"),
                                               Value::String("p")})});
    cols.push_back({"o_totalprice", DataType::kInt,
                    ColumnDomain::IntBuckets(0, 255, 16)});
    (void)schema.AddTable(
        TableSchema("orders", std::move(cols), "o_orderkey",
                    {{"o_custkey", "customer", "c_custkey"}}));
  }
  {
    std::vector<ColumnDef> cols;
    cols.push_back({"l_linekey", DataType::kInt, ColumnDomain::None()});
    cols.push_back({"l_orderkey", DataType::kInt, ColumnDomain::None()});
    cols.push_back(
        {"l_quantity", DataType::kInt, ColumnDomain::IntBuckets(0, 63, 16)});
    cols.push_back(
        {"l_price", DataType::kInt, ColumnDomain::IntBuckets(0, 255, 16)});
    (void)schema.AddTable(
        TableSchema("lineitem", std::move(cols), "l_linekey",
                    {{"l_orderkey", "orders", "o_orderkey"}}));
  }
  return schema;
}

/// Seeded random instance: `n_customers` customers, each with a skewed
/// number of orders, each order with a few lineitems. Every value stays
/// inside its registered domain.
inline std::unique_ptr<Database> MakeTestDatabase(uint64_t seed,
                                                  int n_customers = 30) {
  auto db = std::make_unique<Database>(MakeTestSchema());
  Random rng(seed);
  Table* customer = db->MutableTable("customer");
  Table* orders = db->MutableTable("orders");
  Table* lineitem = db->MutableTable("lineitem");
  int64_t next_order = 1;
  int64_t next_line = 1;
  for (int64_t c = 1; c <= n_customers; ++c) {
    customer->InsertUnchecked({Value::Int(c), Value::Int(rng.UniformInt(0, 4)),
                               Value::Int(rng.UniformInt(0, 63))});
    int64_t n_orders = rng.UniformInt(0, 5);
    for (int64_t o = 0; o < n_orders; ++o) {
      int64_t okey = next_order++;
      const char* statuses[] = {"f", "o", "p"};
      orders->InsertUnchecked(
          {Value::Int(okey), Value::Int(c),
           Value::String(statuses[rng.UniformInt(0, 2)]),
           Value::Int(rng.UniformInt(0, 255))});
      int64_t n_lines = rng.UniformInt(0, 4);
      for (int64_t l = 0; l < n_lines; ++l) {
        lineitem->InsertUnchecked({Value::Int(next_line++), Value::Int(okey),
                                   Value::Int(rng.UniformInt(0, 63)),
                                   Value::Int(rng.UniformInt(0, 255))});
      }
    }
  }
  return db;
}

}  // namespace testing_support
}  // namespace viewrewrite

#endif  // VIEWREWRITE_TESTS_TESTING_TEST_DB_H_
